package blas

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Differential quick-checks: the blocked/fast level-3 kernels against the
// textbook reference loops in ref.go, under randomized transpose flags,
// padded leading dimensions, non-square (including empty) shapes, and the
// special alpha/beta values that trigger early-out paths.
//
// Leading-dimension padding is filled with a large sentinel so that any
// out-of-bounds read poisons the result and any out-of-bounds write is
// caught by the explicit padding check.

const padSentinel = 1e30

// randPadded builds an m×n column-major matrix with leading dimension ld,
// active entries ~N(0,1) and padding rows set to the sentinel.
func randPadded(rng *rand.Rand, m, n, ld int) []float64 {
	s := make([]float64, ld*n)
	for j := 0; j < n; j++ {
		for i := 0; i < ld; i++ {
			if i < m {
				s[i+j*ld] = rng.NormFloat64()
			} else {
				s[i+j*ld] = padSentinel
			}
		}
	}
	return s
}

// checkPadding fails the test if any padding row of the m×n/ld matrix was
// overwritten.
func checkPadding(t *testing.T, name string, m, n, ld int, s []float64) {
	t.Helper()
	for j := 0; j < n; j++ {
		for i := m; i < ld; i++ {
			if s[i+j*ld] != padSentinel {
				t.Fatalf("%s: padding clobbered at (%d,%d)", name, i, j)
			}
		}
	}
}

// pickScalar draws alpha/beta from a mix of the special values (0, 1, -1)
// that gate early-out paths and generic random values.
func pickScalar(rng *rand.Rand) float64 {
	switch rng.Intn(5) {
	case 0:
		return 0
	case 1:
		return 1
	case 2:
		return -1
	default:
		return rng.NormFloat64()
	}
}

func quickCfg(seed int64) *quick.Config {
	return &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(seed))}
}

func TestDiffGemm(t *testing.T) {
	transes := []Transpose{NoTrans, Trans}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		transA := transes[rng.Intn(2)]
		transB := transes[rng.Intn(2)]
		// Sizes cross the gemmKC/gemmNC block boundaries occasionally and
		// include empty dims.
		m, n, k := rng.Intn(36), rng.Intn(36), rng.Intn(140)
		ar, ac := m, k
		if transA == Trans {
			ar, ac = k, m
		}
		br, bc := k, n
		if transB == Trans {
			br, bc = n, k
		}
		lda := max(1, ar) + rng.Intn(4)
		ldb := max(1, br) + rng.Intn(4)
		ldc := max(1, m) + rng.Intn(4)
		a := randPadded(rng, ar, ac, lda)
		b := randPadded(rng, br, bc, ldb)
		c := randPadded(rng, m, n, ldc)
		alpha, beta := pickScalar(rng), pickScalar(rng)

		got := append([]float64(nil), c...)
		want := append([]float64(nil), c...)
		Gemm(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, got, ldc)
		RefGemm(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, want, ldc)
		checkPadding(t, "Gemm C", m, n, ldc, got)
		return maxAbsDiff(got, want) <= 1e-10*float64(k+1)
	}
	if err := quick.Check(f, quickCfg(21)); err != nil {
		t.Error(err)
	}
}

func TestDiffSyrk(t *testing.T) {
	uplos := []Uplo{Upper, Lower}
	transes := []Transpose{NoTrans, Trans}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		uplo := uplos[rng.Intn(2)]
		trans := transes[rng.Intn(2)]
		// Sizes cross the level3Block recursion cutoff so both the halving
		// and the diagonal leaves are exercised.
		n, k := rng.Intn(90), rng.Intn(60)
		ar, ac := n, k
		if trans == Trans {
			ar, ac = k, n
		}
		lda := max(1, ar) + rng.Intn(4)
		ldc := max(1, n) + rng.Intn(4)
		a := randPadded(rng, ar, ac, lda)
		c := randPadded(rng, n, n, ldc)
		alpha, beta := pickScalar(rng), pickScalar(rng)

		got := append([]float64(nil), c...)
		want := append([]float64(nil), c...)
		Syrk(uplo, trans, n, k, alpha, a, lda, beta, got, ldc)
		RefSyrk(uplo, trans, n, k, alpha, a, lda, beta, want, ldc)
		checkPadding(t, "Syrk C", n, n, ldc, got)
		// The unreferenced triangle must be bit-identical to the input;
		// comparing the full buffers covers that too since want shares it.
		return maxAbsDiff(got, want) <= 1e-10*float64(k+1)
	}
	if err := quick.Check(f, quickCfg(22)); err != nil {
		t.Error(err)
	}
}

func TestDiffTrsm(t *testing.T) {
	sides := []Side{Left, Right}
	uplos := []Uplo{Upper, Lower}
	transes := []Transpose{NoTrans, Trans}
	diags := []Diag{NonUnit, Unit}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		side := sides[rng.Intn(2)]
		uplo := uplos[rng.Intn(2)]
		trans := transes[rng.Intn(2)]
		diag := diags[rng.Intn(2)]
		// Sizes cross the trsmBlock recursion cutoff so both the blocked
		// splitting and the substitution leaves are exercised.
		m, n := rng.Intn(90), rng.Intn(90)
		na := m
		if side == Right {
			na = n
		}
		lda := max(1, na) + rng.Intn(4)
		ldb := max(1, m) + rng.Intn(4)
		a := randPadded(rng, na, na, lda)
		// Keep the triangle well conditioned so forward/back substitution
		// does not amplify the comparison noise: dominant diagonal, damped
		// off-diagonal (a unit-diagonal triangle with N(0,1) off-diagonal
		// entries is exponentially ill-conditioned at these sizes).
		for j := 0; j < na; j++ {
			for i := 0; i < na; i++ {
				if i == j {
					a[i+j*lda] = 2 + math.Abs(a[i+j*lda])
				} else {
					a[i+j*lda] /= float64(na)
				}
			}
		}
		b := randPadded(rng, m, n, ldb)
		alpha := pickScalar(rng)

		got := append([]float64(nil), b...)
		want := append([]float64(nil), b...)
		Trsm(side, uplo, trans, diag, m, n, alpha, a, lda, got, ldb)
		RefTrsm(side, uplo, trans, diag, m, n, alpha, a, lda, want, ldb)
		checkPadding(t, "Trsm B", m, n, ldb, got)
		return maxAbsDiff(got, want) <= 1e-8
	}
	if err := quick.Check(f, quickCfg(23)); err != nil {
		t.Error(err)
	}
}

func TestDiffTrmm(t *testing.T) {
	sides := []Side{Left, Right}
	uplos := []Uplo{Upper, Lower}
	transes := []Transpose{NoTrans, Trans}
	diags := []Diag{NonUnit, Unit}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		side := sides[rng.Intn(2)]
		uplo := uplos[rng.Intn(2)]
		trans := transes[rng.Intn(2)]
		diag := diags[rng.Intn(2)]
		// Sizes cross the level3Block partition so the off-diagonal GEMM
		// routing is exercised, not just the small triangular kernels.
		m, n := rng.Intn(90), rng.Intn(90)
		na := m
		if side == Right {
			na = n
		}
		lda := max(1, na) + rng.Intn(4)
		ldb := max(1, m) + rng.Intn(4)
		a := randPadded(rng, na, na, lda)
		b := randPadded(rng, m, n, ldb)
		alpha := pickScalar(rng)

		got := append([]float64(nil), b...)
		want := append([]float64(nil), b...)
		Trmm(side, uplo, trans, diag, m, n, alpha, a, lda, got, ldb)
		RefTrmm(side, uplo, trans, diag, m, n, alpha, a, lda, want, ldb)
		checkPadding(t, "Trmm B", m, n, ldb, got)
		return maxAbsDiff(got, want) <= 1e-10*float64(na+1)
	}
	if err := quick.Check(f, quickCfg(24)); err != nil {
		t.Error(err)
	}
}
