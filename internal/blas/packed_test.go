package blas

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"exadla/internal/metrics"
)

// Tests pinned to the packed register-blocked GEMM path: exhaustive edge
// geometries around the register-tile size, non-finite propagation, pack
// pool reuse under concurrency, steady-state allocation freedom, and the
// flop-accounting contract of the metrics counters.

// forcePath pins Gemm to the packed or axpy kernel for the duration of the
// test by overriding the small-size cutover.
func forcePath(t *testing.T, packed bool) {
	t.Helper()
	old := minPackedVolume
	if packed {
		minPackedVolume = 0
	} else {
		minPackedVolume = 1 << 62
	}
	t.Cleanup(func() { minPackedVolume = old })
}

// TestGemmPackedEdgeSweep drives the packed path through every geometry
// around the register tile: m, n, k ∈ {1..2·MR+1} crosses every partial-tile
// and partial-sliver combination for all four transpose cases, with leading
// dimensions strictly greater than minimal and sentinel-filled padding.
func TestGemmPackedEdgeSweep(t *testing.T) {
	forcePath(t, true)
	limit := 2*GemmBlocking().MR + 1
	transes := []Transpose{NoTrans, Trans}
	rng := rand.New(rand.NewSource(31))
	for _, transA := range transes {
		for _, transB := range transes {
			for m := 1; m <= limit; m++ {
				for n := 1; n <= limit; n++ {
					for k := 1; k <= limit; k++ {
						ar, ac := m, k
						if transA == Trans {
							ar, ac = k, m
						}
						br, bc := k, n
						if transB == Trans {
							br, bc = n, k
						}
						pad := 1 + (m+n+k)%3
						lda, ldb, ldc := ar+pad, br+pad, m+pad
						a := randPadded(rng, ar, ac, lda)
						b := randPadded(rng, br, bc, ldb)
						c := randPadded(rng, m, n, ldc)
						got := append([]float64(nil), c...)
						want := append([]float64(nil), c...)
						Gemm(transA, transB, m, n, k, 1.25, a, lda, b, ldb, 0.5, got, ldc)
						RefGemm(transA, transB, m, n, k, 1.25, a, lda, b, ldb, 0.5, want, ldc)
						checkPadding(t, "Gemm C", m, n, ldc, got)
						if d := maxAbsDiff(got, want); d > 1e-10*float64(k+1) {
							t.Fatalf("transA=%v transB=%v m=%d n=%d k=%d: max diff %g", transA, transB, m, n, k, d)
						}
					}
				}
			}
		}
	}
}

// seedNonFinite overwrites a few active entries of an m×n/ld matrix with
// NaN and ±Inf.
func seedNonFinite(rng *rand.Rand, s []float64, m, n, ld int) {
	if m == 0 || n == 0 {
		return
	}
	specials := []float64{math.NaN(), math.Inf(1), math.Inf(-1)}
	for i := 0; i < 1+rng.Intn(3); i++ {
		s[rng.Intn(m)+rng.Intn(n)*ld] = specials[rng.Intn(3)]
	}
}

// sameValueClass compares element-wise with non-finite awareness: NaN must
// match NaN, infinities must match exactly (including sign), finite values
// within tolerance.
func sameValueClass(got, want, tol float64) bool {
	switch {
	case math.IsNaN(want):
		return math.IsNaN(got)
	case math.IsInf(want, 0):
		return got == want
	default:
		return !math.IsNaN(got) && !math.IsInf(got, 0) && math.Abs(got-want) <= tol
	}
}

// TestGemmNonFinitePropagation pins the propagation semantics documented on
// Gemm: NaN and ±Inf seeded into referenced operands must reach C exactly
// as the reference loops produce them — in particular the kernels must not
// skip zero coefficients inside the product — while β == 0 and α == 0 must
// keep unreferenced NaNs out. Both kernel paths are checked.
func TestGemmNonFinitePropagation(t *testing.T) {
	for _, packed := range []bool{true, false} {
		t.Run(fmt.Sprintf("packed=%v", packed), func(t *testing.T) {
			forcePath(t, packed)
			transes := []Transpose{NoTrans, Trans}
			rng := rand.New(rand.NewSource(37))
			for iter := 0; iter < 300; iter++ {
				transA := transes[rng.Intn(2)]
				transB := transes[rng.Intn(2)]
				m, n, k := 1+rng.Intn(24), 1+rng.Intn(24), 1+rng.Intn(24)
				ar, ac := m, k
				if transA == Trans {
					ar, ac = k, m
				}
				br, bc := k, n
				if transB == Trans {
					br, bc = n, k
				}
				lda, ldb, ldc := ar+1, br+1, m+1
				a := randPadded(rng, ar, ac, lda)
				b := randPadded(rng, br, bc, ldb)
				c := randPadded(rng, m, n, ldc)
				// Sprinkle exact zeros so zero-coefficient shortcuts would
				// be caught dropping 0·NaN terms.
				for i := 0; i < 4; i++ {
					a[rng.Intn(ar)+rng.Intn(ac)*lda] = 0
					b[rng.Intn(br)+rng.Intn(bc)*ldb] = 0
				}
				seedNonFinite(rng, a, ar, ac, lda)
				seedNonFinite(rng, b, br, bc, ldb)
				seedNonFinite(rng, c, m, n, ldc)
				alpha, beta := pickScalar(rng), pickScalar(rng)

				got := append([]float64(nil), c...)
				want := append([]float64(nil), c...)
				Gemm(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, got, ldc)
				RefGemm(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, want, ldc)
				// Active entries are O(1); an out-of-bounds read of the
				// 1e30 padding sentinel blows this tolerance immediately.
				tol := 1e-9 * float64(k+1)
				for j := 0; j < n; j++ {
					for i := 0; i < m; i++ {
						g, w := got[i+j*ldc], want[i+j*ldc]
						if !sameValueClass(g, w, tol) {
							t.Fatalf("iter %d transA=%v transB=%v m=%d n=%d k=%d α=%g β=%g: C(%d,%d) = %g, ref %g",
								iter, transA, transB, m, n, k, alpha, beta, i, j, g, w)
						}
					}
				}
			}
		})
	}
}

// TestGemmConcurrentPool hammers the shared pack-buffer pool from many
// goroutines (meaningful under -race) and checks every result.
func TestGemmConcurrentPool(t *testing.T) {
	forcePath(t, true)
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for iter := 0; iter < 20; iter++ {
				m, n, k := 1+rng.Intn(60), 1+rng.Intn(60), 1+rng.Intn(60)
				a := randPadded(rng, m, k, m)
				b := randPadded(rng, k, n, k)
				got := randPadded(rng, m, n, m)
				want := append([]float64(nil), got...)
				Gemm(NoTrans, NoTrans, m, n, k, 1.5, a, m, b, k, 0.5, got, m)
				RefGemm(NoTrans, NoTrans, m, n, k, 1.5, a, m, b, k, 0.5, want, m)
				if d := maxAbsDiff(got, want); d > 1e-10*float64(k+1) {
					errs <- fmt.Errorf("worker %d iter %d m=%d n=%d k=%d: max diff %g", seed, iter, m, n, k, d)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestLevel3ZeroAllocSteadyState asserts that, once the pack pool is warm,
// the pooled level-3 routines allocate nothing per call: the packed Gemm,
// the axpy TT path (pooled row scratch), Symm (pooled symmetric expansion),
// and Trmm from the right (pooled row scratch).
func TestLevel3ZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool intentionally bypasses caching under the race detector")
	}
	const n = 48
	rng := rand.New(rand.NewSource(41))
	a := randPadded(rng, n, n, n)
	b := randPadded(rng, n, n, n)
	c := randPadded(rng, n, n, n)
	cases := []struct {
		name string
		run  func()
	}{
		{"GemmPacked", func() {
			Gemm(NoTrans, NoTrans, n, n, n, 1.1, a, n, b, n, 0.9, c, n)
		}},
		{"GemmAxpyTT", func() {
			GemmAxpy(Trans, Trans, n, n, n, 1.1, a, n, b, n, 0.9, c, n)
		}},
		{"Symm", func() {
			Symm(Left, Lower, n, n, 1.1, a, n, b, n, 0.9, c, n)
		}},
		{"TrmmRight", func() {
			Trmm(Right, Upper, NoTrans, NonUnit, 24, 24, 1.1, a, n, c, n)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.run() // warm the pool
			if avg := testing.AllocsPerRun(10, tc.run); avg != 0 {
				t.Errorf("%s allocates %.1f objects per call in steady state", tc.name, avg)
			}
		})
	}
}

// TestGemmMetricsAccounting pins the flop-accounting contract: the product
// counter records exactly the product work performed (2mnk, zero on
// early-outs) and β-scaling lands only on the dedicated scale counter.
func TestGemmMetricsAccounting(t *testing.T) {
	reg := metrics.Enable()
	t.Cleanup(func() {
		metrics.Disable()
		metrics.Reset()
	})
	product := reg.Counter("blas.gemm.flops")
	scale := reg.Counter("blas.gemm.scale_flops")

	const m, n, k = 7, 5, 9
	rng := rand.New(rand.NewSource(43))
	a := randPadded(rng, m, k, m)
	b := randPadded(rng, k, n, k)
	c := randPadded(rng, m, n, m)

	check := func(name string, alpha, beta float64, kk int, wantProduct, wantScale int64) {
		t.Helper()
		metrics.Reset()
		Gemm(NoTrans, NoTrans, m, n, kk, alpha, a, m, b, k, beta, c, m)
		if got := product.Load(); got != wantProduct {
			t.Errorf("%s: product flops = %d, want %d", name, got, wantProduct)
		}
		if got := scale.Load(); got != wantScale {
			t.Errorf("%s: scale flops = %d, want %d", name, got, wantScale)
		}
	}

	check("no-op α=0 β=1", 0, 1, k, 0, 0)
	check("β-only", 0, 2.5, k, 0, m*n)
	check("β-zero k=0", 1, 0, 0, 0, m*n)
	check("product β=1", 1.5, 1, k, 2*m*n*k, 0)
	check("product with β", 1.5, 0.5, k, 2*m*n*k, m*n)
}
