package blas

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGemmAgainstRef(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	dims := [][3]int{
		{0, 3, 2}, {1, 1, 1}, {2, 3, 4}, {5, 5, 5}, {7, 3, 11},
		{64, 64, 64}, {65, 63, 130}, {129, 31, 17}, {16, 200, 8},
	}
	for _, ta := range []Transpose{NoTrans, Trans} {
		for _, tb := range []Transpose{NoTrans, Trans} {
			for _, d := range dims {
				m, n, k := d[0], d[1], d[2]
				am, an := m, k
				if ta == Trans {
					am, an = k, m
				}
				bm, bn := k, n
				if tb == Trans {
					bm, bn = n, k
				}
				lda, ldb, ldc := am+1, bm+2, m+3
				a := randMat(rng, am, an, lda)
				b := randMat(rng, bm, bn, ldb)
				c := randMat(rng, m, n, ldc)
				cRef := append([]float64(nil), c...)
				alpha, beta := 1.7, -0.3
				Gemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
				RefGemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, cRef, ldc)
				if d := maxAbsDiff(c, cRef); d > tol64*float64(k+1)*10 {
					t.Errorf("Gemm %v%v m=%d n=%d k=%d: max diff %g", ta, tb, m, n, k, d)
				}
			}
		}
	}
}

func TestGemmBetaZeroIgnoresNaN(t *testing.T) {
	// beta==0 must overwrite C even if it holds garbage that would poison
	// a multiply-based scaling.
	m, n, k := 4, 4, 4
	rng := rand.New(rand.NewSource(21))
	a := randMat(rng, m, k, m)
	b := randMat(rng, k, n, k)
	c := make([]float64, m*n)
	for i := range c {
		c[i] = nan()
	}
	Gemm(NoTrans, NoTrans, m, n, k, 1, a, m, b, k, 0, c, m)
	cRef := make([]float64, m*n)
	RefGemm(NoTrans, NoTrans, m, n, k, 1, a, m, b, k, 0, cRef, m)
	if d := maxAbsDiff(c, cRef); d > tol64*10 {
		t.Errorf("Gemm beta=0 with NaN C: max diff %g", d)
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}

func TestGemmSpecialScalars(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	m, n, k := 9, 8, 7
	a := randMat(rng, m, k, m)
	b := randMat(rng, k, n, k)
	c := randMat(rng, m, n, m)
	// alpha == 0 must reduce to C ← β·C.
	got := append([]float64(nil), c...)
	Gemm(NoTrans, NoTrans, m, n, k, 0, a, m, b, k, 0.5, got, m)
	want := append([]float64(nil), c...)
	for i := range want {
		want[i] *= 0.5
	}
	if d := maxAbsDiff(got, want); d > tol64 {
		t.Errorf("Gemm alpha=0: max diff %g", d)
	}
}

func TestSyrkAgainstRef(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, uplo := range []Uplo{Upper, Lower} {
		for _, trans := range []Transpose{NoTrans, Trans} {
			for _, d := range [][2]int{{1, 1}, {5, 3}, {16, 33}, {63, 17}} {
				n, k := d[0], d[1]
				am, an := n, k
				if trans == Trans {
					am, an = k, n
				}
				lda, ldc := am+1, n+1
				a := randMat(rng, am, an, lda)
				c := randMat(rng, n, n, ldc)
				cRef := append([]float64(nil), c...)
				Syrk(uplo, trans, n, k, 1.2, a, lda, 0.8, c, ldc)
				RefSyrk(uplo, trans, n, k, 1.2, a, lda, 0.8, cRef, ldc)
				if d := maxAbsDiff(c, cRef); d > tol64*float64(k+1)*10 {
					t.Errorf("Syrk %v %v n=%d k=%d: max diff %g", uplo, trans, n, k, d)
				}
			}
		}
	}
}

func TestSyrkOnlyTouchesTriangle(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	n, k := 12, 5
	a := randMat(rng, n, k, n)
	c := randMat(rng, n, n, n)
	orig := append([]float64(nil), c...)
	Syrk(Lower, NoTrans, n, k, 1, a, n, 1, c, n)
	for j := 0; j < n; j++ {
		for i := 0; i < j; i++ { // strict upper must be untouched
			if c[i+j*n] != orig[i+j*n] {
				t.Fatalf("Syrk Lower modified upper element (%d,%d)", i, j)
			}
		}
	}
}

func TestTrsmAgainstRef(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for _, side := range []Side{Left, Right} {
		for _, uplo := range []Uplo{Upper, Lower} {
			for _, trans := range []Transpose{NoTrans, Trans} {
				for _, diag := range []Diag{NonUnit, Unit} {
					for _, d := range [][2]int{{1, 1}, {4, 7}, {13, 6}, {32, 32}} {
						m, n := d[0], d[1]
						na := m
						if side == Right {
							na = n
						}
						lda, ldb := na+1, m+2
						a := randMat(rng, na, na, lda)
						for i := 0; i < na; i++ {
							v := a[i+i*lda]
							if v < 0 {
								v = -v
							}
							a[i+i*lda] = 2 + v
						}
						b := randMat(rng, m, n, ldb)
						bRef := append([]float64(nil), b...)
						Trsm(side, uplo, trans, diag, m, n, 0.7, a, lda, b, ldb)
						RefTrsm(side, uplo, trans, diag, m, n, 0.7, a, lda, bRef, ldb)
						if d := maxAbsDiff(b, bRef); d > 1e-10*float64(m+n) {
							t.Errorf("Trsm %v%v%v%v %dx%d: max diff %g",
								side, uplo, trans, diag, m, n, d)
						}
					}
				}
			}
		}
	}
}

func TestTrmmAgainstRef(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	for _, side := range []Side{Left, Right} {
		for _, uplo := range []Uplo{Upper, Lower} {
			for _, trans := range []Transpose{NoTrans, Trans} {
				for _, diag := range []Diag{NonUnit, Unit} {
					m, n := 9, 6
					na := m
					if side == Right {
						na = n
					}
					a := randMat(rng, na, na, na)
					b := randMat(rng, m, n, m)
					bRef := append([]float64(nil), b...)
					Trmm(side, uplo, trans, diag, m, n, 1.4, a, na, b, m)
					RefTrmm(side, uplo, trans, diag, m, n, 1.4, a, na, bRef, m)
					if d := maxAbsDiff(b, bRef); d > 1e-10*float64(m+n) {
						t.Errorf("Trmm %v%v%v%v: max diff %g", side, uplo, trans, diag, d)
					}
				}
			}
		}
	}
}

func TestTrsmInvertsTrmm(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	m, n := 14, 10
	for _, side := range []Side{Left, Right} {
		for _, uplo := range []Uplo{Upper, Lower} {
			na := m
			if side == Right {
				na = n
			}
			a := randMat(rng, na, na, na)
			for i := 0; i < na; i++ {
				v := a[i+i*na]
				if v < 0 {
					v = -v
				}
				a[i+i*na] = 2 + v
			}
			b := randMat(rng, m, n, m)
			orig := append([]float64(nil), b...)
			Trmm(side, uplo, NoTrans, NonUnit, m, n, 1, a, na, b, m)
			Trsm(side, uplo, NoTrans, NonUnit, m, n, 1, a, na, b, m)
			if d := maxAbsDiff(b, orig); d > 1e-9 {
				t.Errorf("Trsm∘Trmm %v %v: diff %g", side, uplo, d)
			}
		}
	}
}

func TestSymmAgainstRef(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	m, n := 8, 5
	for _, side := range []Side{Left, Right} {
		for _, uplo := range []Uplo{Upper, Lower} {
			na := m
			if side == Right {
				na = n
			}
			full := randMat(rng, na, na, na)
			for j := 0; j < na; j++ {
				for i := 0; i < j; i++ {
					full[j+i*na] = full[i+j*na]
				}
			}
			b := randMat(rng, m, n, m)
			c := randMat(rng, m, n, m)
			cRef := append([]float64(nil), c...)
			Symm(side, uplo, m, n, 1.1, full, na, b, m, 0.4, c, m)
			if side == Left {
				RefGemm(NoTrans, NoTrans, m, n, m, 1.1, full, na, b, m, 0.4, cRef, m)
			} else {
				RefGemm(NoTrans, NoTrans, m, n, n, 1.1, b, m, full, na, 0.4, cRef, m)
			}
			if d := maxAbsDiff(c, cRef); d > 1e-10*float64(m+n) {
				t.Errorf("Symm %v %v: max diff %g", side, uplo, d)
			}
		}
	}
}

// Property: Gemm is bilinear in alpha — Gemm(2α) == 2·Gemm(α) contribution.
func TestGemmScalarLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n, k := 1+r.Intn(20), 1+r.Intn(20), 1+r.Intn(20)
		a := randMat(r, m, k, m)
		b := randMat(r, k, n, k)
		c1 := make([]float64, m*n)
		c2 := make([]float64, m*n)
		Gemm(NoTrans, NoTrans, m, n, k, 2.0, a, m, b, k, 0, c1, m)
		Gemm(NoTrans, NoTrans, m, n, k, 1.0, a, m, b, k, 0, c2, m)
		for i := range c2 {
			c2[i] *= 2
		}
		return maxAbsDiff(c1, c2) < 1e-10*float64(k)
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ.
func TestGemmTransposeIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n, k := 1+r.Intn(16), 1+r.Intn(16), 1+r.Intn(16)
		a := randMat(r, m, k, m)
		b := randMat(r, k, n, k)
		ab := make([]float64, m*n)
		Gemm(NoTrans, NoTrans, m, n, k, 1, a, m, b, k, 0, ab, m)
		// btat = Bᵀ·Aᵀ as an n×m matrix.
		btat := make([]float64, n*m)
		Gemm(Trans, Trans, n, m, k, 1, b, k, a, m, 0, btat, n)
		for j := 0; j < n; j++ {
			for i := 0; i < m; i++ {
				d := ab[i+j*m] - btat[j+i*n]
				if d < 0 {
					d = -d
				}
				if d > 1e-10*float64(k) {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestGemmFloat32(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	m, n, k := 33, 29, 41
	a64 := randMat(rng, m, k, m)
	b64 := randMat(rng, k, n, k)
	a32 := make([]float32, len(a64))
	b32 := make([]float32, len(b64))
	for i := range a64 {
		a32[i] = float32(a64[i])
	}
	for i := range b64 {
		b32[i] = float32(b64[i])
	}
	c32 := make([]float32, m*n)
	c64 := make([]float64, m*n)
	Gemm(NoTrans, NoTrans, m, n, k, 1, a32, m, b32, k, 0, c32, m)
	Gemm(NoTrans, NoTrans, m, n, k, 1, a64, m, b64, k, 0, c64, m)
	for i := range c64 {
		d := float64(c32[i]) - c64[i]
		if d < 0 {
			d = -d
		}
		if d > tol32*float64(k) {
			t.Fatalf("float32 Gemm[%d]: %v vs %v", i, c32[i], c64[i])
		}
	}
}
