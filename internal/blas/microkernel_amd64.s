//go:build amd64

#include "textflag.h"

// func microKern8x4F64Avx(kb int, ap, bp []float64, alpha float64, c []float64, ldc int)
//
// 8×4 register tile of C += α·A·B from packed slivers. Per depth step:
// two VMOVUPD loads pull one 8-row column of the packed op(A) sliver,
// four VBROADCASTSD pull the matching op(B) row, and eight VFMADD231PD
// feed the Y0–Y7 accumulators (one YMM pair per C column). The k loop is
// unrolled ×2 to amortize loop overhead. Writeback multiplies by α and
// accumulates into C column by column.
//
// Only dispatched when detectAvx2Fma() passed, see kernelFor.
TEXT ·microKern8x4F64Avx(SB), NOSPLIT, $0-96
	MOVQ kb+0(FP), CX
	MOVQ ap_base+8(FP), SI
	MOVQ bp_base+32(FP), DI
	MOVQ c_base+64(FP), DX
	MOVQ ldc+88(FP), R8
	SHLQ $3, R8              // ldc in bytes

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

	MOVQ CX, AX
	SHRQ $1, CX              // CX = kb/2 (unrolled pairs)
	JZ   tail

loop2:
	// depth step l
	VMOVUPD      (SI), Y8    // a[0:4]
	VMOVUPD      32(SI), Y9  // a[4:8]
	VBROADCASTSD (DI), Y12
	VBROADCASTSD 8(DI), Y13
	VBROADCASTSD 16(DI), Y14
	VBROADCASTSD 24(DI), Y15
	VFMADD231PD  Y8, Y12, Y0
	VFMADD231PD  Y9, Y12, Y1
	VFMADD231PD  Y8, Y13, Y2
	VFMADD231PD  Y9, Y13, Y3
	VFMADD231PD  Y8, Y14, Y4
	VFMADD231PD  Y9, Y14, Y5
	VFMADD231PD  Y8, Y15, Y6
	VFMADD231PD  Y9, Y15, Y7

	// depth step l+1
	VMOVUPD      64(SI), Y10
	VMOVUPD      96(SI), Y11
	VBROADCASTSD 32(DI), Y12
	VBROADCASTSD 40(DI), Y13
	VBROADCASTSD 48(DI), Y14
	VBROADCASTSD 56(DI), Y15
	VFMADD231PD  Y10, Y12, Y0
	VFMADD231PD  Y11, Y12, Y1
	VFMADD231PD  Y10, Y13, Y2
	VFMADD231PD  Y11, Y13, Y3
	VFMADD231PD  Y10, Y14, Y4
	VFMADD231PD  Y11, Y14, Y5
	VFMADD231PD  Y10, Y15, Y6
	VFMADD231PD  Y11, Y15, Y7

	ADDQ $128, SI
	ADDQ $64, DI
	DECQ CX
	JNZ  loop2

tail:
	ANDQ $1, AX              // odd kb → one more depth step
	JZ   writeback

	VMOVUPD      (SI), Y8
	VMOVUPD      32(SI), Y9
	VBROADCASTSD (DI), Y12
	VBROADCASTSD 8(DI), Y13
	VBROADCASTSD 16(DI), Y14
	VBROADCASTSD 24(DI), Y15
	VFMADD231PD  Y8, Y12, Y0
	VFMADD231PD  Y9, Y12, Y1
	VFMADD231PD  Y8, Y13, Y2
	VFMADD231PD  Y9, Y13, Y3
	VFMADD231PD  Y8, Y14, Y4
	VFMADD231PD  Y9, Y14, Y5
	VFMADD231PD  Y8, Y15, Y6
	VFMADD231PD  Y9, Y15, Y7

writeback:
	VBROADCASTSD alpha+56(FP), Y12

	// column 0
	VMOVUPD     (DX), Y8
	VMOVUPD     32(DX), Y9
	VFMADD231PD Y0, Y12, Y8
	VFMADD231PD Y1, Y12, Y9
	VMOVUPD     Y8, (DX)
	VMOVUPD     Y9, 32(DX)
	ADDQ        R8, DX

	// column 1
	VMOVUPD     (DX), Y8
	VMOVUPD     32(DX), Y9
	VFMADD231PD Y2, Y12, Y8
	VFMADD231PD Y3, Y12, Y9
	VMOVUPD     Y8, (DX)
	VMOVUPD     Y9, 32(DX)
	ADDQ        R8, DX

	// column 2
	VMOVUPD     (DX), Y8
	VMOVUPD     32(DX), Y9
	VFMADD231PD Y4, Y12, Y8
	VFMADD231PD Y5, Y12, Y9
	VMOVUPD     Y8, (DX)
	VMOVUPD     Y9, 32(DX)
	ADDQ        R8, DX

	// column 3
	VMOVUPD     (DX), Y8
	VMOVUPD     32(DX), Y9
	VFMADD231PD Y6, Y12, Y8
	VFMADD231PD Y7, Y12, Y9
	VMOVUPD     Y8, (DX)
	VMOVUPD     Y9, 32(DX)

	VZEROUPPER
	RET

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
