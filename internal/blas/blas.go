// Package blas provides pure-Go implementations of the Basic Linear Algebra
// Subprograms (levels 1, 2, and 3), generic over float32 and float64.
//
// Matrices are stored in column-major order, following the original BLAS and
// LAPACK conventions: element (i, j) of an m×n matrix A with leading
// dimension lda lives at a[i+j*lda], and lda ≥ m. Column-major storage makes
// the column operations that dominate panel factorizations contiguous.
//
// All routines panic on malformed arguments (negative dimensions, leading
// dimensions smaller than the row count, short backing slices). Those are
// programmer errors, not runtime conditions, and silently computing with
// out-of-bounds views would corrupt memory.
//
// The Ref* routines in ref.go are deliberately naive reference
// implementations used by tests in this and dependent packages to validate
// the optimized kernels.
package blas

import "fmt"

// Float is the constraint satisfied by the two IEEE-754 floating point types
// the library operates on.
type Float interface {
	~float32 | ~float64
}

// Transpose specifies whether a matrix operand is used as-is or transposed.
type Transpose byte

// Uplo specifies whether the upper or lower triangle of a matrix is
// referenced.
type Uplo byte

// Side specifies whether a triangular operand appears on the left or right
// of a product.
type Side byte

// Diag specifies whether a triangular matrix has a unit diagonal that is not
// stored.
type Diag byte

const (
	// NoTrans uses the operand unmodified.
	NoTrans Transpose = 'N'
	// Trans uses the transpose of the operand.
	Trans Transpose = 'T'

	// Upper references the upper triangle.
	Upper Uplo = 'U'
	// Lower references the lower triangle.
	Lower Uplo = 'L'

	// Left places the triangular operand on the left: op(A)·X.
	Left Side = 'L'
	// Right places the triangular operand on the right: X·op(A).
	Right Side = 'R'

	// NonUnit means the diagonal entries are stored and used.
	NonUnit Diag = 'N'
	// Unit means the diagonal entries are assumed to be one.
	Unit Diag = 'U'
)

func (t Transpose) String() string { return string(t) }
func (u Uplo) String() string      { return string(u) }
func (s Side) String() string      { return string(s) }
func (d Diag) String() string      { return string(d) }

func checkTrans(t Transpose) {
	if t != NoTrans && t != Trans {
		panic(fmt.Sprintf("blas: invalid Transpose %q", byte(t)))
	}
}

func checkUplo(u Uplo) {
	if u != Upper && u != Lower {
		panic(fmt.Sprintf("blas: invalid Uplo %q", byte(u)))
	}
}

func checkSide(s Side) {
	if s != Left && s != Right {
		panic(fmt.Sprintf("blas: invalid Side %q", byte(s)))
	}
}

func checkDiag(d Diag) {
	if d != NonUnit && d != Unit {
		panic(fmt.Sprintf("blas: invalid Diag %q", byte(d)))
	}
}

// checkMatrix validates the dimensions and backing storage of an m×n
// column-major matrix with leading dimension ld.
func checkMatrix[T Float](name string, m, n int, a []T, ld int) {
	if m < 0 || n < 0 {
		panic(fmt.Sprintf("blas: negative dimension for %s: %d×%d", name, m, n))
	}
	if ld < max(1, m) {
		panic(fmt.Sprintf("blas: bad leading dimension for %s: ld=%d, m=%d", name, ld, m))
	}
	if n > 0 && len(a) < (n-1)*ld+m {
		panic(fmt.Sprintf("blas: short storage for %s: have %d, need %d", name, len(a), (n-1)*ld+m))
	}
}

// checkVector validates an n-vector with stride inc (inc may be negative but
// not zero, matching the BLAS convention).
func checkVector[T Float](name string, n int, x []T, inc int) {
	if n < 0 {
		panic(fmt.Sprintf("blas: negative vector length for %s: %d", name, n))
	}
	if inc == 0 {
		panic(fmt.Sprintf("blas: zero stride for %s", name))
	}
	if n == 0 {
		return
	}
	need := (n-1)*abs(inc) + 1
	if len(x) < need {
		panic(fmt.Sprintf("blas: short storage for %s: have %d, need %d", name, len(x), need))
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// vstart returns the index of the logically-first element of a strided
// vector: 0 for positive strides, (n-1)*|inc| for negative strides.
func vstart(n, inc int) int {
	if inc >= 0 {
		return 0
	}
	return (n - 1) * -inc
}
