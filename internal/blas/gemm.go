package blas

// Blocking parameters for the axpy (pre-packing) Gemm path, retained as the
// small-size fallback: the kc×nc block of B is streamed against full
// columns of A, keeping the active working set near L1/L2 size for float64
// (and comfortably inside it for float32).
const (
	gemmKC = 128
	gemmNC = 64
)

// minPackedVolume is the small-size cutover: products with m·n·k below this
// volume skip panel packing and use the cache-blocked axpy kernels, since
// the mc·kc + kc·nc packing traffic only amortizes once the register tile
// stays hot across many depth steps. With the AVX2 microkernel the packed
// path wins from roughly 12×12×12 up (measured); below that, pack setup
// and pool round-trips dominate. Tests override it to pin a path.
var minPackedVolume int64 = 12 * 12 * 12

// Gemm computes the general matrix-matrix product
//
//	C ← α·op(A)·op(B) + β·C
//
// where op(A) is m×k, op(B) is k×n and C is m×n, all column-major.
//
// Non-finite values propagate exactly as in the reference three-loop
// formulation: every A·B product term participates, including terms whose
// other factor is zero, so NaN and ±Inf in the operands reach C. The two
// coefficient gates follow the BLAS convention instead: β == 0 means C is
// overwritten without being read, and α == 0 means op(A)·op(B) is never
// formed.
func Gemm[T Float](transA, transB Transpose, m, n, k int, alpha T, a []T, lda int, b []T, ldb int, beta T, c []T, ldc int) {
	checkTrans(transA)
	checkTrans(transB)
	if transA == NoTrans {
		checkMatrix("A", m, k, a, lda)
	} else {
		checkMatrix("A", k, m, a, lda)
	}
	if transB == NoTrans {
		checkMatrix("B", k, n, b, ldb)
	} else {
		checkMatrix("B", n, k, b, ldb)
	}
	checkMatrix("C", m, n, c, ldc)
	if m == 0 || n == 0 {
		return
	}
	start := gemmMetrics.Start()

	// C ← β·C. The m·n scaling flops are charged to the dedicated
	// β-scaling counter, never to the 2mnk product counter that feeds the
	// GF/s gauge.
	if beta != 1 {
		scaleMatrix(m, n, beta, c, ldc)
		gemmScaleFlops.Add(int64(m) * int64(n))
	}
	if alpha == 0 || k == 0 {
		// No product work was done (β == 1 makes this a complete no-op);
		// charge zero product flops so metrics stay truthful.
		gemmMetrics.Stop(start, 0)
		return
	}

	gemmAccum(transA, transB, m, n, k, alpha, a, lda, b, ldb, c, ldc)
	gemmMetrics.Stop(start, 2*int64(m)*int64(n)*int64(k))
}

// GemmAxpy is Gemm restricted to the pre-packing cache-blocked axpy
// kernels. It is the small-size path of Gemm and the baseline the packed
// kernel is benchmarked against (cmd/exabench -json); it records no
// metrics.
func GemmAxpy[T Float](transA, transB Transpose, m, n, k int, alpha T, a []T, lda int, b []T, ldb int, beta T, c []T, ldc int) {
	checkTrans(transA)
	checkTrans(transB)
	if transA == NoTrans {
		checkMatrix("A", m, k, a, lda)
	} else {
		checkMatrix("A", k, m, a, lda)
	}
	if transB == NoTrans {
		checkMatrix("B", k, n, b, ldb)
	} else {
		checkMatrix("B", n, k, b, ldb)
	}
	checkMatrix("C", m, n, c, ldc)
	if m == 0 || n == 0 {
		return
	}
	if beta != 1 {
		scaleMatrix(m, n, beta, c, ldc)
	}
	if alpha == 0 || k == 0 {
		return
	}
	gemmAxpyKernel(transA, transB, m, n, k, alpha, a, lda, b, ldb, c, ldc)
}

// scaleMatrix computes C ← β·C columnwise, writing zeros outright for
// β == 0 per the BLAS convention (C is not read, so stale NaNs die).
func scaleMatrix[T Float](m, n int, beta T, c []T, ldc int) {
	for j := 0; j < n; j++ {
		col := c[j*ldc : j*ldc+m]
		if beta == 0 {
			for i := range col {
				col[i] = 0
			}
		} else {
			for i := range col {
				col[i] *= beta
			}
		}
	}
}

// gemmAccum computes C += α·op(A)·op(B) with no argument validation,
// metrics, or β-scaling — the shared internal entry point for Gemm itself
// and for the level-3 routines (Syrk, Trmm) that are built from rectangular
// GEMM updates and keep their own accounting. Callers guarantee
// m, n, k ≥ 1 and α ≠ 0.
func gemmAccum[T Float](transA, transB Transpose, m, n, k int, alpha T, a []T, lda int, b []T, ldb int, c []T, ldc int) {
	if int64(m)*int64(n)*int64(k) < minPackedVolume {
		gemmAxpyKernel(transA, transB, m, n, k, alpha, a, lda, b, ldb, c, ldc)
		return
	}
	gemmPacked(transA, transB, m, n, k, alpha, a, lda, b, ldb, c, ldc)
}

// gemmPacked is the packed, register-blocked path: kc×nc panels of op(B)
// and mc×kc panels of op(A) are packed into contiguous pooled buffers
// (normalizing all four transpose cases at pack time), then an mr×nr
// register-tile microkernel sweeps the panels under mc/kc/nc cache
// blocking. Edge tiles run through a zeroed scratch tile; the packed
// slivers themselves are zero-padded so the microkernel never branches.
func gemmPacked[T Float](transA, transB Transpose, m, n, k int, alpha T, a []T, lda int, b []T, ldb int, c []T, ldc int) {
	p := GemmBlocking()
	mr, nr := p.MR, p.NR
	if mr == 8 && (!is64[T]() || !haveAvx2Fma) {
		mr = 4 // the 8-row kernel is AVX2+FMA assembly, float64 only
	}
	kern := kernelFor[T](mr)
	mc, kc, nc := p.MC, p.KC, p.NC

	kcEff := min(kc, k)
	aBuf := getScratch[T](roundUp(min(mc, m), mr) * kcEff)
	bBuf := getScratch[T](kcEff * roundUp(min(nc, n), nr))
	// Edge-tile scratch lives in the pool too: a local array would escape
	// through the kern indirect call and cost one heap allocation per call.
	tBuf := getScratch[T](maxMR * maxNR)
	for jc := 0; jc < n; jc += nc {
		nb := min(nc, n-jc)
		for pc := 0; pc < k; pc += kc {
			kb := min(kc, k-pc)
			packB(transB, kb, nb, b, ldb, pc, jc, nr, bBuf.buf)
			for ic := 0; ic < m; ic += mc {
				mb := min(mc, m-ic)
				packA(transA, mb, kb, a, lda, ic, pc, mr, aBuf.buf)
				macroKernel(mb, nb, kb, mr, nr, alpha, aBuf.buf, bBuf.buf, c[ic+jc*ldc:], ldc, kern, tBuf.buf)
			}
		}
	}
	aBuf.release()
	bBuf.release()
	tBuf.release()
}

// macroKernel sweeps the register tiles of one packed mb×kb × kb×nb block
// pair, dispatching full tiles straight into C and partial edge tiles
// through a zeroed mr×nr scratch (tmp, pool-backed, ≥ maxMR·maxNR) whose
// valid region is then accumulated.
func macroKernel[T Float](mb, nb, kb, mr, nr int, alpha T, ap, bp, c []T, ldc int, kern microKernel[T], tmp []T) {
	for jr := 0; jr < nb; jr += nr {
		cols := min(nr, nb-jr)
		bs := bp[(jr/nr)*(kb*nr):]
		for ir := 0; ir < mb; ir += mr {
			rows := min(mr, mb-ir)
			as := ap[(ir/mr)*(kb*mr):]
			if rows == mr && cols == nr {
				kern(kb, as, bs, alpha, c[ir+jr*ldc:], ldc)
				continue
			}
			clear(tmp[:mr*nr])
			kern(kb, as, bs, alpha, tmp[:], mr)
			for j := 0; j < cols; j++ {
				dst := c[ir+(jr+j)*ldc:]
				src := tmp[j*mr:]
				for i := 0; i < rows; i++ {
					dst[i] += src[i]
				}
			}
		}
	}
}

// roundUp rounds v up to the next multiple of unit.
func roundUp(v, unit int) int {
	return (v + unit - 1) / unit * unit
}

// gemmAxpyKernel dispatches the four transpose cases of the axpy path.
func gemmAxpyKernel[T Float](transA, transB Transpose, m, n, k int, alpha T, a []T, lda int, b []T, ldb int, c []T, ldc int) {
	switch {
	case transA == NoTrans && transB == NoTrans:
		gemmNN(m, n, k, alpha, a, lda, b, ldb, c, ldc)
	case transA == NoTrans && transB == Trans:
		gemmNT(m, n, k, alpha, a, lda, b, ldb, c, ldc)
	case transA == Trans && transB == NoTrans:
		gemmTN(m, n, k, alpha, a, lda, b, ldb, c, ldc)
	default:
		gemmTT(m, n, k, alpha, a, lda, b, ldb, c, ldc)
	}
}

// gemmNN computes C += α·A·B. The kernel accumulates axpy updates of
// contiguous A columns into contiguous C columns, two k-steps at a time,
// blocked over (k, n) so the touched A panel stays cache resident. Zero
// B coefficients are NOT skipped: 0·NaN must propagate (see Gemm).
func gemmNN[T Float](m, n, k int, alpha T, a []T, lda int, b []T, ldb int, c []T, ldc int) {
	for jb := 0; jb < n; jb += gemmNC {
		nb := min(gemmNC, n-jb)
		for lb := 0; lb < k; lb += gemmKC {
			kb := min(gemmKC, k-lb)
			for j := jb; j < jb+nb; j++ {
				ccol := c[j*ldc : j*ldc+m]
				bcol := b[j*ldb:]
				l := lb
				for ; l+1 < lb+kb; l += 2 {
					b0 := alpha * bcol[l]
					b1 := alpha * bcol[l+1]
					a0 := a[l*lda : l*lda+m]
					a1 := a[(l+1)*lda : (l+1)*lda+m]
					for i := range ccol {
						ccol[i] += b0*a0[i] + b1*a1[i]
					}
				}
				if l < lb+kb {
					b0 := alpha * bcol[l]
					a0 := a[l*lda : l*lda+m]
					for i := range ccol {
						ccol[i] += b0 * a0[i]
					}
				}
			}
		}
	}
}

// gemmNT computes C += α·A·Bᵀ: B is n×k, so the k-coefficient for column j
// is B[j,l], a strided access mitigated by the same (k, n) blocking.
func gemmNT[T Float](m, n, k int, alpha T, a []T, lda int, b []T, ldb int, c []T, ldc int) {
	for jb := 0; jb < n; jb += gemmNC {
		nb := min(gemmNC, n-jb)
		for lb := 0; lb < k; lb += gemmKC {
			kb := min(gemmKC, k-lb)
			for j := jb; j < jb+nb; j++ {
				ccol := c[j*ldc : j*ldc+m]
				l := lb
				for ; l+1 < lb+kb; l += 2 {
					b0 := alpha * b[j+l*ldb]
					b1 := alpha * b[j+(l+1)*ldb]
					a0 := a[l*lda : l*lda+m]
					a1 := a[(l+1)*lda : (l+1)*lda+m]
					for i := range ccol {
						ccol[i] += b0*a0[i] + b1*a1[i]
					}
				}
				if l < lb+kb {
					b0 := alpha * b[j+l*ldb]
					a0 := a[l*lda : l*lda+m]
					for i := range ccol {
						ccol[i] += b0 * a0[i]
					}
				}
			}
		}
	}
}

// gemmTN computes C += α·Aᵀ·B: C[i,j] = α·A[:,i]ᵀB[:,j], dot products over
// contiguous columns of both operands.
func gemmTN[T Float](m, n, k int, alpha T, a []T, lda int, b []T, ldb int, c []T, ldc int) {
	for jb := 0; jb < n; jb += gemmNC {
		nb := min(gemmNC, n-jb)
		for ib := 0; ib < m; ib += gemmNC {
			mb := min(gemmNC, m-ib)
			for j := jb; j < jb+nb; j++ {
				bcol := b[j*ldb : j*ldb+k]
				ccol := c[j*ldc:]
				for i := ib; i < ib+mb; i++ {
					acol := a[i*lda : i*lda+k]
					var s T
					for l, av := range acol {
						s += av * bcol[l]
					}
					ccol[i] += alpha * s
				}
			}
		}
	}
}

// gemmTT computes C += α·Aᵀ·Bᵀ = α·(B·A)ᵀ. It streams axpy updates of B
// columns into a pooled row of C per A column; strided C writes are
// blocked. Zero A coefficients are NOT skipped so 0·NaN propagates.
func gemmTT[T Float](m, n, k int, alpha T, a []T, lda int, b []T, ldb int, c []T, ldc int) {
	// C[i,j] = α Σ_l A[l,i]·B[j,l]. Iterate i over columns of A
	// (contiguous), then l down that column, scattering into row i of C.
	rowBuf := getScratch[T](n)
	row := rowBuf.buf
	for i := 0; i < m; i++ {
		acol := a[i*lda : i*lda+k]
		for j := range row {
			row[j] = 0
		}
		for l, av := range acol {
			bcol := b[l*ldb : l*ldb+n]
			for j, bv := range bcol {
				row[j] += av * bv
			}
		}
		for j, v := range row {
			c[i+j*ldc] += alpha * v
		}
	}
	rowBuf.release()
}
