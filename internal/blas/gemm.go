package blas

// Blocking parameters for Gemm. The kc×nc block of B is streamed against
// full columns of A, keeping the active working set near L1/L2 size for
// float64 (and comfortably inside it for float32).
const (
	gemmKC = 128
	gemmNC = 64
)

// Gemm computes the general matrix-matrix product
//
//	C ← α·op(A)·op(B) + β·C
//
// where op(A) is m×k, op(B) is k×n and C is m×n, all column-major.
func Gemm[T Float](transA, transB Transpose, m, n, k int, alpha T, a []T, lda int, b []T, ldb int, beta T, c []T, ldc int) {
	checkTrans(transA)
	checkTrans(transB)
	if transA == NoTrans {
		checkMatrix("A", m, k, a, lda)
	} else {
		checkMatrix("A", k, m, a, lda)
	}
	if transB == NoTrans {
		checkMatrix("B", k, n, b, ldb)
	} else {
		checkMatrix("B", n, k, b, ldb)
	}
	checkMatrix("C", m, n, c, ldc)
	if m == 0 || n == 0 {
		return
	}
	start := gemmMetrics.Start()

	// C ← β·C.
	if beta != 1 {
		for j := 0; j < n; j++ {
			col := c[j*ldc : j*ldc+m]
			if beta == 0 {
				for i := range col {
					col[i] = 0
				}
			} else {
				for i := range col {
					col[i] *= beta
				}
			}
		}
	}
	if alpha == 0 || k == 0 {
		gemmMetrics.Stop(start, int64(m)*int64(n)) // β-scaling only
		return
	}

	switch {
	case transA == NoTrans && transB == NoTrans:
		gemmNN(m, n, k, alpha, a, lda, b, ldb, c, ldc)
	case transA == NoTrans && transB == Trans:
		gemmNT(m, n, k, alpha, a, lda, b, ldb, c, ldc)
	case transA == Trans && transB == NoTrans:
		gemmTN(m, n, k, alpha, a, lda, b, ldb, c, ldc)
	default:
		gemmTT(m, n, k, alpha, a, lda, b, ldb, c, ldc)
	}
	gemmMetrics.Stop(start, 2*int64(m)*int64(n)*int64(k))
}

// gemmNN computes C += α·A·B. The kernel accumulates axpy updates of
// contiguous A columns into contiguous C columns, two k-steps at a time,
// blocked over (k, n) so the touched A panel stays cache resident.
func gemmNN[T Float](m, n, k int, alpha T, a []T, lda int, b []T, ldb int, c []T, ldc int) {
	for jb := 0; jb < n; jb += gemmNC {
		nb := min(gemmNC, n-jb)
		for lb := 0; lb < k; lb += gemmKC {
			kb := min(gemmKC, k-lb)
			for j := jb; j < jb+nb; j++ {
				ccol := c[j*ldc : j*ldc+m]
				bcol := b[j*ldb:]
				l := lb
				for ; l+1 < lb+kb; l += 2 {
					b0 := alpha * bcol[l]
					b1 := alpha * bcol[l+1]
					if b0 == 0 && b1 == 0 {
						continue
					}
					a0 := a[l*lda : l*lda+m]
					a1 := a[(l+1)*lda : (l+1)*lda+m]
					for i := range ccol {
						ccol[i] += b0*a0[i] + b1*a1[i]
					}
				}
				if l < lb+kb {
					b0 := alpha * bcol[l]
					if b0 != 0 {
						a0 := a[l*lda : l*lda+m]
						for i := range ccol {
							ccol[i] += b0 * a0[i]
						}
					}
				}
			}
		}
	}
}

// gemmNT computes C += α·A·Bᵀ: B is n×k, so the k-coefficient for column j
// is B[j,l], a strided access mitigated by the same (k, n) blocking.
func gemmNT[T Float](m, n, k int, alpha T, a []T, lda int, b []T, ldb int, c []T, ldc int) {
	for jb := 0; jb < n; jb += gemmNC {
		nb := min(gemmNC, n-jb)
		for lb := 0; lb < k; lb += gemmKC {
			kb := min(gemmKC, k-lb)
			for j := jb; j < jb+nb; j++ {
				ccol := c[j*ldc : j*ldc+m]
				l := lb
				for ; l+1 < lb+kb; l += 2 {
					b0 := alpha * b[j+l*ldb]
					b1 := alpha * b[j+(l+1)*ldb]
					if b0 == 0 && b1 == 0 {
						continue
					}
					a0 := a[l*lda : l*lda+m]
					a1 := a[(l+1)*lda : (l+1)*lda+m]
					for i := range ccol {
						ccol[i] += b0*a0[i] + b1*a1[i]
					}
				}
				if l < lb+kb {
					b0 := alpha * b[j+l*ldb]
					if b0 != 0 {
						a0 := a[l*lda : l*lda+m]
						for i := range ccol {
							ccol[i] += b0 * a0[i]
						}
					}
				}
			}
		}
	}
}

// gemmTN computes C += α·Aᵀ·B: C[i,j] = α·A[:,i]ᵀB[:,j], dot products over
// contiguous columns of both operands.
func gemmTN[T Float](m, n, k int, alpha T, a []T, lda int, b []T, ldb int, c []T, ldc int) {
	for jb := 0; jb < n; jb += gemmNC {
		nb := min(gemmNC, n-jb)
		for ib := 0; ib < m; ib += gemmNC {
			mb := min(gemmNC, m-ib)
			for j := jb; j < jb+nb; j++ {
				bcol := b[j*ldb : j*ldb+k]
				ccol := c[j*ldc:]
				for i := ib; i < ib+mb; i++ {
					acol := a[i*lda : i*lda+k]
					var s T
					for l, av := range acol {
						s += av * bcol[l]
					}
					ccol[i] += alpha * s
				}
			}
		}
	}
}

// gemmTT computes C += α·Aᵀ·Bᵀ = α·(B·A)ᵀ. It streams axpy updates of B
// columns into a row of C per A column; strided C writes are blocked.
func gemmTT[T Float](m, n, k int, alpha T, a []T, lda int, b []T, ldb int, c []T, ldc int) {
	// C[i,j] = α Σ_l A[l,i]·B[j,l]. Iterate i over columns of A
	// (contiguous), then l down that column, scattering into row i of C.
	row := make([]T, n)
	for i := 0; i < m; i++ {
		acol := a[i*lda : i*lda+k]
		for j := range row {
			row[j] = 0
		}
		for l, av := range acol {
			if av == 0 {
				continue
			}
			bcol := b[l*ldb : l*ldb+n]
			for j, bv := range bcol {
				row[j] += av * bv
			}
		}
		for j, v := range row {
			c[i+j*ldc] += alpha * v
		}
	}
}
