package blas

import "exadla/internal/metrics"

// Per-kernel flop and wall-time accounting for the level-3 BLAS, feeding
// the "blas.<kernel>.flops" / ".ns" counters and the derived ".gflops"
// gauge in the default metrics registry. The handles are resolved once at
// init; with metrics disabled (the default) each instrumented call costs a
// single atomic load, and recording happens per kernel invocation — never
// inside the compute loops.
//
// Symm is not separately instrumented: it expands the symmetric operand and
// delegates to Gemm, so its work is reported under blas.gemm.
var (
	gemmMetrics = metrics.Default().Kernel("blas.gemm")
	syrkMetrics = metrics.Default().Kernel("blas.syrk")
	trmmMetrics = metrics.Default().Kernel("blas.trmm")
	trsmMetrics = metrics.Default().Kernel("blas.trsm")
)
