package blas

import "exadla/internal/metrics"

// Per-kernel flop and wall-time accounting for the level-3 BLAS, feeding
// the "blas.<kernel>.flops" / ".ns" counters and the derived ".gflops"
// gauge in the default metrics registry. The handles are resolved once at
// init; with metrics disabled (the default) each instrumented call costs a
// single atomic load, and recording happens per kernel invocation — never
// inside the compute loops.
//
// Accounting rules, kept truthful by tests:
//   - the per-kernel flop counters record only product work actually
//     performed (2mnk for Gemm); early-out paths (α == 0, k == 0) charge
//     zero, so GF/s gauges never report work that never ran;
//   - Gemm's β-scaling pass (m·n multiplies) is charged to the separate
//     "blas.gemm.scale_flops" counter, never to the product counter.
//
// Symm is not separately instrumented: it expands the symmetric operand and
// delegates to Gemm, so its work is reported under blas.gemm. Syrk and Trmm
// route their off-diagonal blocks through the internal unmetered GEMM entry
// and keep their own counters, so nothing is double-counted.
var (
	gemmMetrics    = metrics.Default().Kernel("blas.gemm")
	gemmScaleFlops = metrics.Default().Counter("blas.gemm.scale_flops")
	syrkMetrics    = metrics.Default().Kernel("blas.syrk")
	trmmMetrics    = metrics.Default().Kernel("blas.trmm")
	trsmMetrics    = metrics.Default().Kernel("blas.trsm")
)
