package blas

import (
	"math"
	"math/rand"
	"testing"
)

func TestGemvAgainstRef(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, trans := range []Transpose{NoTrans, Trans} {
		for _, dims := range [][2]int{{0, 3}, {1, 1}, {5, 3}, {3, 5}, {17, 23}, {64, 64}} {
			m, n := dims[0], dims[1]
			lda := m + 2
			if lda < 1 {
				lda = 1
			}
			a := randMat(rng, m, n, lda)
			lx, ly := n, m
			if trans == Trans {
				lx, ly = m, n
			}
			x := randSlice(rng, lx)
			y := randSlice(rng, ly)
			yRef := append([]float64(nil), y...)
			alpha, beta := 1.3, -0.7
			Gemv(trans, m, n, alpha, a, lda, x, 1, beta, y, 1)
			RefGemv(trans, m, n, alpha, a, lda, x, 1, beta, yRef, 1)
			if d := maxAbsDiff(y, yRef); d > tol64*float64(m+n+1) {
				t.Errorf("Gemv %v %dx%d: max diff %g", trans, m, n, d)
			}
		}
	}
}

func TestGemvStrided(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m, n := 9, 7
	lda := m
	a := randMat(rng, m, n, lda)
	x := randSlice(rng, 2*n)
	y := randSlice(rng, 3*m)
	yRef := append([]float64(nil), y...)
	Gemv(NoTrans, m, n, 2.0, a, lda, x, 2, 0.5, y, 3)
	RefGemv(NoTrans, m, n, 2.0, a, lda, x, 2, 0.5, yRef, 3)
	if d := maxAbsDiff(y, yRef); d > tol64*float64(m+n) {
		t.Errorf("strided Gemv: max diff %g", d)
	}
}

func TestGer(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m, n := 13, 8
	lda := m + 1
	a := randMat(rng, m, n, lda)
	aRef := append([]float64(nil), a...)
	x := randSlice(rng, m)
	y := randSlice(rng, n)
	Ger(m, n, 1.5, x, 1, y, 1, a, lda)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			aRef[i+j*lda] += 1.5 * x[i] * y[j]
		}
	}
	if d := maxAbsDiff(a, aRef); d > tol64 {
		t.Errorf("Ger: max diff %g", d)
	}
}

func TestSymv(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 11
	lda := n
	// Build a full symmetric matrix, then test both triangle encodings.
	full := randMat(rng, n, n, lda)
	for j := 0; j < n; j++ {
		for i := 0; i < j; i++ {
			full[j+i*lda] = full[i+j*lda]
		}
	}
	x := randSlice(rng, n)
	for _, uplo := range []Uplo{Upper, Lower} {
		y := randSlice(rng, n)
		yRef := append([]float64(nil), y...)
		Symv(uplo, n, 0.9, full, lda, x, 1, 1.1, y, 1)
		RefGemv(NoTrans, n, n, 0.9, full, lda, x, 1, 1.1, yRef, 1)
		if d := maxAbsDiff(y, yRef); d > tol64*float64(n) {
			t.Errorf("Symv %v: max diff %g", uplo, d)
		}
	}
}

func TestTrmvTrsvRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	n := 16
	lda := n
	for _, uplo := range []Uplo{Upper, Lower} {
		for _, trans := range []Transpose{NoTrans, Trans} {
			for _, diag := range []Diag{NonUnit, Unit} {
				a := randMat(rng, n, n, lda)
				// Make the diagonal well-conditioned.
				for i := 0; i < n; i++ {
					a[i+i*lda] = 2 + math.Abs(a[i+i*lda])
				}
				x := randSlice(rng, n)
				orig := append([]float64(nil), x...)
				Trmv(uplo, trans, diag, n, a, lda, x, 1)
				Trsv(uplo, trans, diag, n, a, lda, x, 1)
				if d := maxAbsDiff(x, orig); d > 1e-10 {
					t.Errorf("Trmv/Trsv %v %v %v: round-trip diff %g", uplo, trans, diag, d)
				}
			}
		}
	}
}

func TestTrsvSolvesSystem(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	n := 20
	lda := n
	for _, uplo := range []Uplo{Upper, Lower} {
		for _, trans := range []Transpose{NoTrans, Trans} {
			a := randMat(rng, n, n, lda)
			for i := 0; i < n; i++ {
				a[i+i*lda] = 3 + math.Abs(a[i+i*lda])
			}
			xTrue := randSlice(rng, n)
			// b = op(T)·x where T is the referenced triangle.
			b := append([]float64(nil), xTrue...)
			Trmv(uplo, trans, NonUnit, n, a, lda, b, 1)
			Trsv(uplo, trans, NonUnit, n, a, lda, b, 1)
			if d := maxAbsDiff(b, xTrue); d > 1e-9 {
				t.Errorf("Trsv %v %v: solution diff %g", uplo, trans, d)
			}
		}
	}
}

func TestTrmvStrided(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	n := 8
	a := randMat(rng, n, n, n)
	x := randSlice(rng, 2*n)
	dense := make([]float64, n)
	for i := 0; i < n; i++ {
		dense[i] = x[2*i]
	}
	Trmv(Lower, NoTrans, NonUnit, n, a, n, x, 2)
	Trmv(Lower, NoTrans, NonUnit, n, a, n, dense, 1)
	for i := 0; i < n; i++ {
		if math.Abs(x[2*i]-dense[i]) > tol64 {
			t.Fatalf("strided Trmv[%d]: %v vs %v", i, x[2*i], dense[i])
		}
	}
}
