package blas

// Gemv computes the matrix-vector product
//
//	y ← α·op(A)·x + β·y, op(A) = A or Aᵀ,
//
// where A is an m×n column-major matrix.
func Gemv[T Float](trans Transpose, m, n int, alpha T, a []T, lda int, x []T, incX int, beta T, y []T, incY int) {
	checkTrans(trans)
	checkMatrix("A", m, n, a, lda)
	lenX, lenY := n, m
	if trans == Trans {
		lenX, lenY = m, n
	}
	checkVector("x", lenX, x, incX)
	checkVector("y", lenY, y, incY)
	if lenY == 0 {
		return
	}

	// y ← β·y.
	if beta != 1 {
		if beta == 0 {
			iy := vstart(lenY, incY)
			for i := 0; i < lenY; i++ {
				y[iy] = 0
				iy += incY
			}
		} else {
			Scal(lenY, beta, y, incY)
		}
	}
	if alpha == 0 || m == 0 || n == 0 {
		return
	}

	if trans == NoTrans {
		// y ← y + α Σ_j x[j]·A[:,j]; columns are contiguous.
		ix := vstart(lenX, incX)
		for j := 0; j < n; j++ {
			xv := alpha * x[ix]
			ix += incX
			if xv == 0 {
				continue
			}
			col := a[j*lda : j*lda+m]
			if incY == 1 {
				for i, av := range col {
					y[i] += xv * av
				}
			} else {
				iy := vstart(lenY, incY)
				for _, av := range col {
					y[iy] += xv * av
					iy += incY
				}
			}
		}
		return
	}
	// Transposed: y[j] += α·A[:,j]ᵀx.
	iy := vstart(lenY, incY)
	for j := 0; j < n; j++ {
		col := a[j*lda : j*lda+m]
		var s T
		if incX == 1 {
			for i, av := range col {
				s += av * x[i]
			}
		} else {
			ix := vstart(lenX, incX)
			for _, av := range col {
				s += av * x[ix]
				ix += incX
			}
		}
		y[iy] += alpha * s
		iy += incY
	}
}

// Ger computes the rank-one update A ← α·x·yᵀ + A for an m×n matrix A.
func Ger[T Float](m, n int, alpha T, x []T, incX int, y []T, incY int, a []T, lda int) {
	checkMatrix("A", m, n, a, lda)
	checkVector("x", m, x, incX)
	checkVector("y", n, y, incY)
	if m == 0 || n == 0 || alpha == 0 {
		return
	}
	iy := vstart(n, incY)
	for j := 0; j < n; j++ {
		yv := alpha * y[iy]
		iy += incY
		if yv == 0 {
			continue
		}
		col := a[j*lda : j*lda+m]
		if incX == 1 {
			for i, xv := range x[:m] {
				col[i] += xv * yv
			}
		} else {
			ix := vstart(m, incX)
			for i := 0; i < m; i++ {
				col[i] += x[ix] * yv
				ix += incX
			}
		}
	}
}

// Symv computes y ← α·A·x + β·y where A is an n×n symmetric matrix of which
// only the uplo triangle is referenced.
func Symv[T Float](uplo Uplo, n int, alpha T, a []T, lda int, x []T, incX int, beta T, y []T, incY int) {
	checkUplo(uplo)
	checkMatrix("A", n, n, a, lda)
	checkVector("x", n, x, incX)
	checkVector("y", n, y, incY)
	if n == 0 {
		return
	}
	if beta != 1 {
		if beta == 0 {
			iy := vstart(n, incY)
			for i := 0; i < n; i++ {
				y[iy] = 0
				iy += incY
			}
		} else {
			Scal(n, beta, y, incY)
		}
	}
	if alpha == 0 {
		return
	}
	// Work in logical indices; handle strides via helpers.
	xi := func(i int) T { return x[vstart(n, incX)+i*incX] }
	addY := func(i int, v T) { y[vstart(n, incY)+i*incY] += v }
	for j := 0; j < n; j++ {
		col := a[j*lda:]
		if uplo == Lower {
			// Diagonal and below stored in column j.
			addY(j, alpha*col[j]*xi(j))
			for i := j + 1; i < n; i++ {
				addY(i, alpha*col[i]*xi(j))
				addY(j, alpha*col[i]*xi(i))
			}
		} else {
			addY(j, alpha*col[j]*xi(j))
			for i := 0; i < j; i++ {
				addY(i, alpha*col[i]*xi(j))
				addY(j, alpha*col[i]*xi(i))
			}
		}
	}
}

// Trmv computes x ← op(A)·x where A is an n×n triangular matrix.
func Trmv[T Float](uplo Uplo, trans Transpose, diag Diag, n int, a []T, lda int, x []T, incX int) {
	checkUplo(uplo)
	checkTrans(trans)
	checkDiag(diag)
	checkMatrix("A", n, n, a, lda)
	checkVector("x", n, x, incX)
	if n == 0 {
		return
	}
	if incX != 1 {
		// Gather, compute densely, scatter. Triangular solves and products
		// with non-unit stride are rare in this library; clarity wins.
		tmp := make([]T, n)
		Copy(n, x, incX, tmp, 1)
		Trmv(uplo, trans, diag, n, a, lda, tmp, 1)
		Copy(n, tmp, 1, x, incX)
		return
	}
	unit := diag == Unit
	if trans == NoTrans {
		if uplo == Upper {
			for i := 0; i < n; i++ {
				var s T
				if unit {
					s = x[i]
				} else {
					s = a[i+i*lda] * x[i]
				}
				for j := i + 1; j < n; j++ {
					s += a[i+j*lda] * x[j]
				}
				x[i] = s
			}
		} else {
			for i := n - 1; i >= 0; i-- {
				var s T
				if unit {
					s = x[i]
				} else {
					s = a[i+i*lda] * x[i]
				}
				for j := 0; j < i; j++ {
					s += a[i+j*lda] * x[j]
				}
				x[i] = s
			}
		}
		return
	}
	// Transposed.
	if uplo == Upper {
		for i := n - 1; i >= 0; i-- {
			var s T
			if unit {
				s = x[i]
			} else {
				s = a[i+i*lda] * x[i]
			}
			for j := 0; j < i; j++ {
				s += a[j+i*lda] * x[j]
			}
			x[i] = s
		}
	} else {
		for i := 0; i < n; i++ {
			var s T
			if unit {
				s = x[i]
			} else {
				s = a[i+i*lda] * x[i]
			}
			for j := i + 1; j < n; j++ {
				s += a[j+i*lda] * x[j]
			}
			x[i] = s
		}
	}
}

// Trsv solves op(A)·x = b in place (x overwrites b) where A is an n×n
// triangular matrix.
func Trsv[T Float](uplo Uplo, trans Transpose, diag Diag, n int, a []T, lda int, x []T, incX int) {
	checkUplo(uplo)
	checkTrans(trans)
	checkDiag(diag)
	checkMatrix("A", n, n, a, lda)
	checkVector("x", n, x, incX)
	if n == 0 {
		return
	}
	if incX != 1 {
		tmp := make([]T, n)
		Copy(n, x, incX, tmp, 1)
		Trsv(uplo, trans, diag, n, a, lda, tmp, 1)
		Copy(n, tmp, 1, x, incX)
		return
	}
	unit := diag == Unit
	if trans == NoTrans {
		if uplo == Lower {
			// Forward substitution.
			for j := 0; j < n; j++ {
				if !unit {
					x[j] /= a[j+j*lda]
				}
				xj := x[j]
				if xj == 0 {
					continue
				}
				col := a[j*lda:]
				for i := j + 1; i < n; i++ {
					x[i] -= xj * col[i]
				}
			}
		} else {
			// Back substitution.
			for j := n - 1; j >= 0; j-- {
				if !unit {
					x[j] /= a[j+j*lda]
				}
				xj := x[j]
				if xj == 0 {
					continue
				}
				col := a[j*lda:]
				for i := 0; i < j; i++ {
					x[i] -= xj * col[i]
				}
			}
		}
		return
	}
	// op(A) = Aᵀ: traverse rows of Aᵀ as columns of A.
	if uplo == Lower {
		// Aᵀ is upper triangular: back substitution with dot products.
		for i := n - 1; i >= 0; i-- {
			col := a[i*lda:]
			s := x[i]
			for j := i + 1; j < n; j++ {
				s -= col[j] * x[j]
			}
			if !unit {
				s /= col[i]
			}
			x[i] = s
		}
	} else {
		// Aᵀ is lower triangular: forward substitution.
		for i := 0; i < n; i++ {
			col := a[i*lda:]
			s := x[i]
			for j := 0; j < i; j++ {
				s -= col[j] * x[j]
			}
			if !unit {
				s /= col[i]
			}
			x[i] = s
		}
	}
}
