package blas

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: Trsm inverts Trmm for every (side, uplo, trans, diag) and
// random well-conditioned triangles.
func TestQuickTrsmInvertsTrmm(t *testing.T) {
	sides := []Side{Left, Right}
	uplos := []Uplo{Upper, Lower}
	transes := []Transpose{NoTrans, Trans}
	diags := []Diag{NonUnit, Unit}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		side := sides[rng.Intn(2)]
		uplo := uplos[rng.Intn(2)]
		trans := transes[rng.Intn(2)]
		diag := diags[rng.Intn(2)]
		m, n := 1+rng.Intn(20), 1+rng.Intn(20)
		na := m
		if side == Right {
			na = n
		}
		a := randMat(rng, na, na, na)
		for i := 0; i < na; i++ {
			a[i+i*na] = 2 + math.Abs(a[i+i*na])
		}
		b := randMat(rng, m, n, m)
		orig := append([]float64(nil), b...)
		Trmm(side, uplo, trans, diag, m, n, 1, a, na, b, m)
		Trsm(side, uplo, trans, diag, m, n, 1, a, na, b, m)
		return maxAbsDiff(b, orig) < 1e-8
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Syrk(C, A) matches Gemm(A, Aᵀ) on the referenced triangle for
// random shapes and scalars.
func TestQuickSyrkMatchesGemm(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, k := 1+rng.Intn(24), 1+rng.Intn(24)
		trans := NoTrans
		if seed%2 == 0 {
			trans = Trans
		}
		am, an := n, k
		if trans == Trans {
			am, an = k, n
		}
		a := randMat(rng, am, an, am)
		alpha, beta := rng.NormFloat64(), rng.NormFloat64()
		c1 := randMat(rng, n, n, n)
		c2 := append([]float64(nil), c1...)
		uplo := Lower
		if seed%3 == 0 {
			uplo = Upper
		}
		Syrk(uplo, trans, n, k, alpha, a, am, beta, c1, n)
		if trans == NoTrans {
			RefGemm(NoTrans, Trans, n, n, k, alpha, a, am, a, am, beta, c2, n)
		} else {
			RefGemm(Trans, NoTrans, n, n, k, alpha, a, am, a, am, beta, c2, n)
		}
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				inTri := (uplo == Lower && i >= j) || (uplo == Upper && i <= j)
				if !inTri {
					continue
				}
				if math.Abs(c1[i+j*n]-c2[i+j*n]) > 1e-10*float64(k+1) {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Gemv agrees with Gemm on an n×1 operand.
func TestQuickGemvIsGemmColumn(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(30), 1+rng.Intn(30)
		a := randMat(rng, m, n, m)
		x := randSlice(rng, n)
		y1 := randSlice(rng, m)
		y2 := append([]float64(nil), y1...)
		alpha, beta := rng.NormFloat64(), rng.NormFloat64()
		Gemv(NoTrans, m, n, alpha, a, m, x, 1, beta, y1, 1)
		Gemm(NoTrans, NoTrans, m, 1, n, alpha, a, m, x, n, beta, y2, m)
		return maxAbsDiff(y1, y2) < 1e-10*float64(n+1)
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Dot is symmetric and Nrm2² ≈ Dot(x, x).
func TestQuickDotNrm2Consistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		x := randSlice(rng, n)
		y := randSlice(rng, n)
		if math.Abs(Dot(n, x, 1, y, 1)-Dot(n, y, 1, x, 1)) > 1e-10*float64(n) {
			return false
		}
		nrm := Nrm2(n, x, 1)
		return math.Abs(nrm*nrm-Dot(n, x, 1, x, 1)) < 1e-9*(1+nrm*nrm)
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(4))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
