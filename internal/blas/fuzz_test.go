package blas

import (
	"math/rand"
	"testing"
)

// FuzzGemmDiff differentially fuzzes both Gemm kernel paths (packed and
// axpy) against the reference loops, including non-finite operand entries.
// Matrix data is derived from the fuzzed seed rather than taken raw so the
// finite entries stay O(1) and accumulation-order differences cannot
// overflow; NaN/±Inf coverage comes from deterministic seeding, where the
// value class is order-independent and compared exactly.
func FuzzGemmDiff(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(8), uint8(8), uint8(0))
	f.Add(int64(2), uint8(17), uint8(9), uint8(13), uint8(3))
	f.Add(int64(3), uint8(1), uint8(31), uint8(2), uint8(0xff))
	f.Add(int64(4), uint8(24), uint8(24), uint8(24), uint8(0x5a))
	f.Fuzz(func(t *testing.T, seed int64, m8, n8, k8, flags uint8) {
		m, n, k := int(m8%33), int(n8%33), int(k8%33)
		transA, transB := NoTrans, NoTrans
		if flags&1 != 0 {
			transA = Trans
		}
		if flags&2 != 0 {
			transB = Trans
		}
		rng := rand.New(rand.NewSource(seed))
		scalars := []float64{0, 1, -1, 0.5, rng.NormFloat64()}
		alpha := scalars[int(flags>>2)%len(scalars)]
		beta := scalars[int(flags>>5)%len(scalars)]

		ar, ac := m, k
		if transA == Trans {
			ar, ac = k, m
		}
		br, bc := k, n
		if transB == Trans {
			br, bc = n, k
		}
		lda := max(1, ar) + rng.Intn(3)
		ldb := max(1, br) + rng.Intn(3)
		ldc := max(1, m) + rng.Intn(3)
		a := randPadded(rng, ar, ac, lda)
		b := randPadded(rng, br, bc, ldb)
		c := randPadded(rng, m, n, ldc)
		if flags&4 != 0 {
			seedNonFinite(rng, a, ar, ac, lda)
			seedNonFinite(rng, b, br, bc, ldb)
			seedNonFinite(rng, c, m, n, ldc)
		}

		want := append([]float64(nil), c...)
		RefGemm(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, want, ldc)

		check := func(name string, got []float64) {
			t.Helper()
			checkPadding(t, name+" C", m, n, ldc, got)
			// Active entries are O(1), so any out-of-bounds read of the
			// 1e30 padding sentinel blows this tolerance immediately.
			tol := 1e-9 * float64(k+1)
			for j := 0; j < n; j++ {
				for i := 0; i < m; i++ {
					g, w := got[i+j*ldc], want[i+j*ldc]
					if !sameValueClass(g, w, tol) {
						t.Fatalf("%s: transA=%v transB=%v m=%d n=%d k=%d α=%g β=%g: C(%d,%d) = %g, ref %g",
							name, transA, transB, m, n, k, alpha, beta, i, j, g, w)
					}
				}
			}
		}

		packed := append([]float64(nil), c...)
		old := minPackedVolume
		minPackedVolume = 0
		Gemm(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, packed, ldc)
		minPackedVolume = old
		check("packed", packed)

		axpy := append([]float64(nil), c...)
		GemmAxpy(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, axpy, ldc)
		check("axpy", axpy)
	})
}
