//go:build !amd64

package blas

// Non-amd64 targets have no assembly kernel; the generic Go microkernels
// carry all tile shapes.
const haveAvx2Fma = false

func microKern8x4F64Avx(kb int, ap, bp []float64, alpha float64, c []float64, ldc int) {
	panic("blas: AVX2 microkernel dispatched without assembly support")
}
