package blas

import "math"

// Dot computes the inner product xᵀy of two n-vectors.
func Dot[T Float](n int, x []T, incX int, y []T, incY int) T {
	checkVector("x", n, x, incX)
	checkVector("y", n, y, incY)
	if n == 0 {
		return 0
	}
	if incX == 1 && incY == 1 {
		var s T
		for i, v := range x[:n] {
			s += v * y[i]
		}
		return s
	}
	ix, iy := vstart(n, incX), vstart(n, incY)
	var s T
	for i := 0; i < n; i++ {
		s += x[ix] * y[iy]
		ix += incX
		iy += incY
	}
	return s
}

// Nrm2 computes the Euclidean norm of an n-vector using scaling to avoid
// overflow and underflow, in the manner of the reference dnrm2.
func Nrm2[T Float](n int, x []T, incX int) T {
	checkVector("x", n, x, incX)
	if n == 0 {
		return 0
	}
	var scale, ssq T = 0, 1
	ix := vstart(n, incX)
	for i := 0; i < n; i++ {
		v := x[ix]
		ix += incX
		if v == 0 {
			continue
		}
		av := v
		if av < 0 {
			av = -av
		}
		if scale < av {
			r := scale / av
			ssq = 1 + ssq*r*r
			scale = av
		} else {
			r := av / scale
			ssq += r * r
		}
	}
	return scale * T(math.Sqrt(float64(ssq)))
}

// Asum computes the sum of absolute values of an n-vector.
func Asum[T Float](n int, x []T, incX int) T {
	checkVector("x", n, x, incX)
	var s T
	ix := vstart(n, incX)
	for i := 0; i < n; i++ {
		v := x[ix]
		if v < 0 {
			v = -v
		}
		s += v
		ix += incX
	}
	return s
}

// Axpy computes y ← αx + y for n-vectors x and y.
func Axpy[T Float](n int, alpha T, x []T, incX int, y []T, incY int) {
	checkVector("x", n, x, incX)
	checkVector("y", n, y, incY)
	if n == 0 || alpha == 0 {
		return
	}
	if incX == 1 && incY == 1 {
		for i, v := range x[:n] {
			y[i] += alpha * v
		}
		return
	}
	ix, iy := vstart(n, incX), vstart(n, incY)
	for i := 0; i < n; i++ {
		y[iy] += alpha * x[ix]
		ix += incX
		iy += incY
	}
}

// Scal computes x ← αx for an n-vector x.
func Scal[T Float](n int, alpha T, x []T, incX int) {
	checkVector("x", n, x, incX)
	if incX == 1 {
		for i := range x[:n] {
			x[i] *= alpha
		}
		return
	}
	ix := vstart(n, incX)
	for i := 0; i < n; i++ {
		x[ix] *= alpha
		ix += incX
	}
}

// Copy copies an n-vector x into y.
func Copy[T Float](n int, x []T, incX int, y []T, incY int) {
	checkVector("x", n, x, incX)
	checkVector("y", n, y, incY)
	if incX == 1 && incY == 1 {
		copy(y[:n], x[:n])
		return
	}
	ix, iy := vstart(n, incX), vstart(n, incY)
	for i := 0; i < n; i++ {
		y[iy] = x[ix]
		ix += incX
		iy += incY
	}
}

// Swap exchanges the contents of two n-vectors.
func Swap[T Float](n int, x []T, incX int, y []T, incY int) {
	checkVector("x", n, x, incX)
	checkVector("y", n, y, incY)
	ix, iy := vstart(n, incX), vstart(n, incY)
	for i := 0; i < n; i++ {
		x[ix], y[iy] = y[iy], x[ix]
		ix += incX
		iy += incY
	}
}

// Iamax returns the index (in logical vector order, zero-based) of the
// element with the largest absolute value. It returns -1 for n == 0.
func Iamax[T Float](n int, x []T, incX int) int {
	checkVector("x", n, x, incX)
	if n == 0 {
		return -1
	}
	ix := vstart(n, incX)
	best, bestIdx := x[ix], 0
	if best < 0 {
		best = -best
	}
	ix += incX
	for i := 1; i < n; i++ {
		v := x[ix]
		if v < 0 {
			v = -v
		}
		if v > best {
			best, bestIdx = v, i
		}
		ix += incX
	}
	return bestIdx
}

// Rotg computes the parameters of a Givens rotation that zeroes b:
//
//	⎡ c  s⎤ ⎡a⎤   ⎡r⎤
//	⎣-s  c⎦ ⎣b⎦ = ⎣0⎦
//
// It returns r, c, and s, using the numerically careful formulation of the
// reference drotg.
func Rotg[T Float](a, b T) (r, c, s T) {
	if b == 0 {
		if a == 0 {
			return 0, 1, 0
		}
		return a, 1, 0
	}
	if a == 0 {
		return b, 0, 1
	}
	aa, ab := a, b
	if aa < 0 {
		aa = -aa
	}
	if ab < 0 {
		ab = -ab
	}
	if aa > ab {
		t := b / a
		u := T(math.Sqrt(float64(1 + t*t)))
		if a < 0 {
			u = -u
		}
		c = 1 / u
		s = t * c
		r = a * u
	} else {
		t := a / b
		u := T(math.Sqrt(float64(1 + t*t)))
		if b < 0 {
			u = -u
		}
		s = 1 / u
		c = t * s
		r = b * u
	}
	return r, c, s
}

// Rot applies a plane rotation with cosine c and sine s to the n-vectors x
// and y: (xᵢ, yᵢ) ← (c·xᵢ + s·yᵢ, -s·xᵢ + c·yᵢ).
func Rot[T Float](n int, x []T, incX int, y []T, incY int, c, s T) {
	checkVector("x", n, x, incX)
	checkVector("y", n, y, incY)
	ix, iy := vstart(n, incX), vstart(n, incY)
	for i := 0; i < n; i++ {
		xv, yv := x[ix], y[iy]
		x[ix] = c*xv + s*yv
		y[iy] = -s*xv + c*yv
		ix += incX
		iy += incY
	}
}
