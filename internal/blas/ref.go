package blas

// This file contains deliberately naive reference implementations used to
// validate the optimized kernels, both by this package's tests and by tests
// of dependent packages. They favour the most literal possible transcription
// of the definitions over speed.

// RefGemm computes C ← α·op(A)·op(B) + β·C with triple loops.
//
// The coefficient gates follow the BLAS convention, which the optimized
// Gemm is pinned to: β == 0 overwrites C without reading it and α == 0
// skips the product entirely (op(A)/op(B) are never read), so stale NaNs in
// unread operands do not leak into C. Inside the product, however, every
// term participates — zero entries of A and B are NOT skipped — so NaN and
// ±Inf in referenced operands propagate.
func RefGemm[T Float](transA, transB Transpose, m, n, k int, alpha T, a []T, lda int, b []T, ldb int, beta T, c []T, ldc int) {
	at := func(i, l int) T {
		if transA == NoTrans {
			return a[i+l*lda]
		}
		return a[l+i*lda]
	}
	bt := func(l, j int) T {
		if transB == NoTrans {
			return b[l+j*ldb]
		}
		return b[j+l*ldb]
	}
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			var v T
			if beta != 0 {
				v = beta * c[i+j*ldc]
			}
			if alpha != 0 {
				var s T
				for l := 0; l < k; l++ {
					s += at(i, l) * bt(l, j)
				}
				v += alpha * s
			}
			c[i+j*ldc] = v
		}
	}
}

// RefGemv computes y ← α·op(A)·x + β·y with explicit loops.
func RefGemv[T Float](trans Transpose, m, n int, alpha T, a []T, lda int, x []T, incX int, beta T, y []T, incY int) {
	rows, cols := m, n
	if trans == Trans {
		rows, cols = n, m
	}
	at := func(i, j int) T {
		if trans == NoTrans {
			return a[i+j*lda]
		}
		return a[j+i*lda]
	}
	res := make([]T, rows)
	for i := 0; i < rows; i++ {
		var s T
		ix := vstart(cols, incX)
		for j := 0; j < cols; j++ {
			s += at(i, j) * x[ix]
			ix += incX
		}
		res[i] = alpha * s
	}
	iy := vstart(rows, incY)
	for i := 0; i < rows; i++ {
		y[iy] = res[i] + beta*y[iy]
		iy += incY
	}
}

// RefSyrk computes the uplo triangle of C ← α·op(A)·op(A)ᵀ + β·C.
func RefSyrk[T Float](uplo Uplo, trans Transpose, n, k int, alpha T, a []T, lda int, beta T, c []T, ldc int) {
	at := func(i, l int) T {
		if trans == NoTrans {
			return a[i+l*lda]
		}
		return a[l+i*lda]
	}
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			inTri := (uplo == Lower && i >= j) || (uplo == Upper && i <= j)
			if !inTri {
				continue
			}
			var s T
			for l := 0; l < k; l++ {
				s += at(i, l) * at(j, l)
			}
			c[i+j*ldc] = alpha*s + beta*c[i+j*ldc]
		}
	}
}

// RefTrsm solves op(A)·X = α·B or X·op(A) = α·B by expanding the triangular
// operand densely and using unoptimized substitution.
func RefTrsm[T Float](side Side, uplo Uplo, transA Transpose, diag Diag, m, n int, alpha T, a []T, lda int, b []T, ldb int) {
	na := m
	if side == Right {
		na = n
	}
	// Densify op(A).
	full := make([]T, na*na)
	for j := 0; j < na; j++ {
		for i := 0; i < na; i++ {
			var v T
			switch {
			case i == j:
				if diag == Unit {
					v = 1
				} else {
					v = a[i+j*lda]
				}
			case (uplo == Lower && i > j) || (uplo == Upper && i < j):
				v = a[i+j*lda]
			}
			if transA == NoTrans {
				full[i+j*na] = v
			} else {
				full[j+i*na] = v
			}
		}
	}
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			b[i+j*ldb] *= alpha
		}
	}
	if side == Left {
		// Solve full·X = B by Gaussian elimination without pivoting
		// (triangular systems need none).
		lowerEff := (uplo == Lower) == (transA == NoTrans)
		for j := 0; j < n; j++ {
			col := b[j*ldb : j*ldb+m]
			if lowerEff {
				for i := 0; i < m; i++ {
					s := col[i]
					for l := 0; l < i; l++ {
						s -= full[i+l*na] * col[l]
					}
					col[i] = s / full[i+i*na]
				}
			} else {
				for i := m - 1; i >= 0; i-- {
					s := col[i]
					for l := i + 1; l < m; l++ {
						s -= full[i+l*na] * col[l]
					}
					col[i] = s / full[i+i*na]
				}
			}
		}
		return
	}
	// Right: X·full = B ⇒ fullᵀ·Xᵀ = Bᵀ. Solve row-wise.
	lowerEff := (uplo == Lower) == (transA == NoTrans) // of full
	for i := 0; i < m; i++ {
		// row of B as vector of length n; solve fullᵀ y = row.
		row := make([]T, n)
		for j := 0; j < n; j++ {
			row[j] = b[i+j*ldb]
		}
		// fullᵀ is upper if full lower.
		if lowerEff {
			// fullᵀ upper: back substitution.
			for j := n - 1; j >= 0; j-- {
				s := row[j]
				for l := j + 1; l < n; l++ {
					s -= full[l+j*na] * row[l]
				}
				row[j] = s / full[j+j*na]
			}
		} else {
			for j := 0; j < n; j++ {
				s := row[j]
				for l := 0; l < j; l++ {
					s -= full[l+j*na] * row[l]
				}
				row[j] = s / full[j+j*na]
			}
		}
		for j := 0; j < n; j++ {
			b[i+j*ldb] = row[j]
		}
	}
}

// RefTrmm computes B ← α·op(A)·B or α·B·op(A) densely.
func RefTrmm[T Float](side Side, uplo Uplo, transA Transpose, diag Diag, m, n int, alpha T, a []T, lda int, b []T, ldb int) {
	na := m
	if side == Right {
		na = n
	}
	full := make([]T, na*na)
	for j := 0; j < na; j++ {
		for i := 0; i < na; i++ {
			var v T
			switch {
			case i == j:
				if diag == Unit {
					v = 1
				} else {
					v = a[i+j*lda]
				}
			case (uplo == Lower && i > j) || (uplo == Upper && i < j):
				v = a[i+j*lda]
			}
			full[i+j*na] = v
		}
	}
	out := make([]T, m*n)
	if side == Left {
		RefGemm(transA, NoTrans, m, n, m, alpha, full, na, cloneMat(m, n, b, ldb), m, 0, out, m)
	} else {
		RefGemm(NoTrans, transA, m, n, n, alpha, cloneMat(m, n, b, ldb), m, full, na, 0, out, m)
	}
	for j := 0; j < n; j++ {
		copy(b[j*ldb:j*ldb+m], out[j*m:j*m+m])
	}
}

func cloneMat[T Float](m, n int, a []T, lda int) []T {
	out := make([]T, m*n)
	for j := 0; j < n; j++ {
		copy(out[j*m:j*m+m], a[j*lda:j*lda+m])
	}
	return out
}
