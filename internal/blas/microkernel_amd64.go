//go:build amd64

package blas

// AVX2+FMA microkernel support. The assembly kernel is only dispatched when
// the CPU reports the full feature set it needs (AVX, AVX2, FMA, and OS
// support for YMM state); everything else falls back to the portable Go
// kernels. Detection runs once at init via raw CPUID/XGETBV so the package
// needs no external cpu-feature dependency.

// microKern8x4F64Avx computes an 8×4 register tile C += α·A·B from packed
// slivers using YMM FMA: two 4-wide column vectors of op(A) per depth step
// against four broadcast elements of op(B), eight accumulators resident in
// registers for the whole k loop. Implemented in microkernel_amd64.s.
//
//go:noescape
func microKern8x4F64Avx(kb int, ap, bp []float64, alpha float64, c []float64, ldc int)

// cpuidex executes CPUID with the given leaf/subleaf.
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads extended control register 0 (OS-enabled xsave state mask).
func xgetbv0() (eax, edx uint32)

var haveAvx2Fma = detectAvx2Fma()

func detectAvx2Fma() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return false
	}
	const (
		fma     = 1 << 12
		osxsave = 1 << 27
		avx     = 1 << 28
	)
	_, _, ecx1, _ := cpuidex(1, 0)
	if ecx1&(fma|osxsave|avx) != fma|osxsave|avx {
		return false
	}
	// OS must have enabled XMM and YMM state saving.
	xeax, _ := xgetbv0()
	if xeax&0x6 != 0x6 {
		return false
	}
	const avx2 = 1 << 5
	_, ebx7, _, _ := cpuidex(7, 0)
	return ebx7&avx2 != 0
}
