//go:build race

package blas

// raceEnabled reports whether the race detector is active; under it
// sync.Pool intentionally bypasses caching, so allocation-count tests
// do not hold.
const raceEnabled = true
