package blas

import "sync/atomic"

// Blocking holds the packed-GEMM blocking parameters. The register tile
// (MR×NR) is the microkernel footprint: MR rows of packed op(A) times NR
// columns of packed op(B) accumulate in registers. The cache blocks follow
// the usual GotoBLAS/BLIS hierarchy: a KC×NC panel of op(B) is packed once
// and streamed from L3/L2 while MC×KC panels of op(A) are packed to stay
// L2-resident, so every element of A is loaded from main memory once per
// NC-wide sweep instead of once per column of C.
//
// Parameters are process-global (they describe the machine, not a problem
// instance) and may be retuned at runtime with SetGemmBlocking; cmd/exatune
// persists tuned values, and exadla.WithTuningTable installs them.
type Blocking struct {
	MR int // microkernel rows; supported: 4 or 8
	NR int // microkernel columns; supported: 4
	MC int // rows of the packed op(A) block
	KC int // shared inner (depth) block
	NC int // columns of the packed op(B) block
}

// DefaultBlocking is the untuned parameter set: an 8×4 register tile with
// cache blocks sized for a typical ≥32 KiB L1 / ≥512 KiB L2 core. The
// packed op(A) block is MC·KC·8 B = 512 KiB of float64 and each packed
// op(B) sliver (KC·NR) stays under L1.
func DefaultBlocking() Blocking {
	return Blocking{MR: 8, NR: 4, MC: 256, KC: 256, NC: 1024}
}

// gemmBlocking is the installed parameter set, read once per Gemm call.
var gemmBlocking atomic.Pointer[Blocking]

func init() {
	b := DefaultBlocking()
	gemmBlocking.Store(&b)
}

// GemmBlocking returns the currently installed blocking parameters.
func GemmBlocking() Blocking { return *gemmBlocking.Load() }

// SetGemmBlocking installs new blocking parameters, clamping each field to
// the supported range first (MR to a compiled microkernel height, NR to the
// compiled width, cache blocks to sane minima), and returns the parameter
// set actually installed. Non-positive fields keep their defaults, so a
// partially-filled Blocking tunes only the fields it names.
func SetGemmBlocking(b Blocking) Blocking {
	d := DefaultBlocking()
	if b.MR <= 0 {
		b.MR = d.MR
	}
	if b.NR <= 0 {
		b.NR = d.NR
	}
	if b.MC <= 0 {
		b.MC = d.MC
	}
	if b.KC <= 0 {
		b.KC = d.KC
	}
	if b.NC <= 0 {
		b.NC = d.NC
	}
	// Only MR∈{4,8}, NR=4 microkernels are compiled; round down to the
	// nearest supported tile.
	if b.MR >= 8 {
		b.MR = 8
	} else {
		b.MR = 4
	}
	b.NR = 4
	b.MC = clampBlock(b.MC, b.MR)
	b.KC = clampBlock(b.KC, 1)
	b.NC = clampBlock(b.NC, b.NR)
	gemmBlocking.Store(&b)
	return b
}

// clampBlock bounds a cache-block dimension to [unit, 1<<16] and rounds it
// down to a multiple of unit so full register tiles divide cache blocks.
func clampBlock(v, unit int) int {
	if v < unit {
		return unit
	}
	if v > 1<<16 {
		v = 1 << 16
	}
	return v - v%unit
}
