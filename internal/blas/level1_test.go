package blas

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const (
	tol64 = 1e-12
	tol32 = 1e-4
)

func randSlice(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

func randMat(rng *rand.Rand, m, n, ld int) []float64 {
	s := make([]float64, ld*n)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			s[i+j*ld] = rng.NormFloat64()
		}
	}
	return s
}

func maxAbsDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("length mismatch")
	}
	var d float64
	for i := range a {
		if v := math.Abs(a[i] - b[i]); v > d {
			d = v
		}
	}
	return d
}

func TestDot(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 7, 100} {
		x := randSlice(rng, n)
		y := randSlice(rng, n)
		want := 0.0
		for i := range x {
			want += x[i] * y[i]
		}
		if got := Dot(n, x, 1, y, 1); math.Abs(got-want) > tol64*float64(n+1) {
			t.Errorf("Dot n=%d: got %v want %v", n, got, want)
		}
	}
}

func TestDotStrided(t *testing.T) {
	x := []float64{1, 99, 2, 99, 3}
	y := []float64{4, 5, 6}
	// x strided by 2 -> (1,2,3); dot = 4+10+18 = 32.
	if got := Dot(3, x, 2, y, 1); got != 32 {
		t.Errorf("strided Dot: got %v want 32", got)
	}
	// Negative stride reverses the logical order of x: (3,2,1)·(4,5,6)=28.
	if got := Dot(3, x, -2, y, 1); got != 28 {
		t.Errorf("negative stride Dot: got %v want 28", got)
	}
}

func TestNrm2(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 5, 333} {
		x := randSlice(rng, n)
		want := 0.0
		for _, v := range x {
			want += v * v
		}
		want = math.Sqrt(want)
		if got := Nrm2(n, x, 1); math.Abs(got-want) > tol64*(want+1) {
			t.Errorf("Nrm2 n=%d: got %v want %v", n, got, want)
		}
	}
}

func TestNrm2OverflowSafety(t *testing.T) {
	// Values whose squares overflow float64; the scaled algorithm must not.
	big := math.MaxFloat64 / 2
	x := []float64{big, big}
	got := Nrm2(2, x, 1)
	want := big * math.Sqrt2
	if math.IsInf(got, 0) || math.Abs(got-want)/want > 1e-14 {
		t.Errorf("Nrm2 overflow: got %v want %v", got, want)
	}
	// And float32 underflow: tiny values squared flush to zero naively.
	tiny := float32(1e-22)
	xf := []float32{tiny, tiny}
	gotf := Nrm2(2, xf, 1)
	wantf := tiny * float32(math.Sqrt2)
	if gotf == 0 || math.Abs(float64(gotf-wantf))/float64(wantf) > 1e-6 {
		t.Errorf("Nrm2 underflow: got %v want %v", gotf, wantf)
	}
}

func TestAxpyScalCopySwap(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 57
	x := randSlice(rng, n)
	y := randSlice(rng, n)
	y2 := append([]float64(nil), y...)
	Axpy(n, 2.5, x, 1, y, 1)
	for i := range y {
		want := y2[i] + 2.5*x[i]
		if math.Abs(y[i]-want) > tol64 {
			t.Fatalf("Axpy[%d]: got %v want %v", i, y[i], want)
		}
	}
	Scal(n, 0.5, y, 1)
	Copy(n, y, 1, y2, 1)
	if maxAbsDiff(y, y2) != 0 {
		t.Fatal("Copy mismatch")
	}
	x2 := append([]float64(nil), x...)
	Swap(n, x, 1, y, 1)
	if maxAbsDiff(x, y2) != 0 || maxAbsDiff(y, x2) != 0 {
		t.Fatal("Swap mismatch")
	}
}

func TestIamax(t *testing.T) {
	cases := []struct {
		x    []float64
		want int
	}{
		{nil, -1},
		{[]float64{3}, 0},
		{[]float64{1, -5, 2}, 1},
		{[]float64{-2, -2, 1}, 0}, // first of equal magnitudes
	}
	for _, c := range cases {
		if got := Iamax(len(c.x), c.x, 1); got != c.want {
			t.Errorf("Iamax(%v): got %d want %d", c.x, got, c.want)
		}
	}
}

func TestRotg(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		r, c, s := Rotg(a, b)
		// The rotation must zero b and produce r.
		if got := c*a + s*b; math.Abs(got-r) > 1e-12 {
			t.Fatalf("Rotg(%v,%v): c*a+s*b=%v, r=%v", a, b, got, r)
		}
		if got := -s*a + c*b; math.Abs(got) > 1e-12 {
			t.Fatalf("Rotg(%v,%v): -s*a+c*b=%v, want 0", a, b, got)
		}
		if got := c*c + s*s; math.Abs(got-1) > 1e-12 {
			t.Fatalf("Rotg(%v,%v): c²+s²=%v", a, b, got)
		}
	}
	// Degenerate cases.
	if r, c, s := Rotg(0.0, 0.0); r != 0 || c != 1 || s != 0 {
		t.Errorf("Rotg(0,0) = %v,%v,%v", r, c, s)
	}
}

func TestAsum(t *testing.T) {
	x := []float64{1, -2, 3, -4}
	if got := Asum(4, x, 1); got != 10 {
		t.Errorf("Asum: got %v want 10", got)
	}
}

func TestRotPreservesNorm(t *testing.T) {
	f := func(a, b, xv, yv float64) bool {
		for _, v := range []float64{a, b, xv, yv} {
			if math.IsNaN(v) || math.Abs(v) > math.MaxFloat64/4 {
				return true // rotation itself cannot avoid overflow of x,y
			}
		}
		_, c, s := Rotg(a, b)
		x, y := []float64{xv}, []float64{yv}
		before := math.Hypot(xv, yv)
		Rot(1, x, 1, y, 1, c, s)
		after := math.Hypot(x[0], y[0])
		return math.Abs(before-after) <= 1e-9*(1+before)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestFloat32Kernels(t *testing.T) {
	// The generic kernels must work identically for float32.
	x := []float32{1, 2, 3}
	y := []float32{4, 5, 6}
	if got := Dot(3, x, 1, y, 1); got != 32 {
		t.Errorf("float32 Dot: got %v want 32", got)
	}
	Axpy(3, 2, x, 1, y, 1)
	if y[0] != 6 || y[1] != 9 || y[2] != 12 {
		t.Errorf("float32 Axpy: got %v", y)
	}
}

func TestVectorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("negative n", func() { Dot[float64](-1, nil, 1, nil, 1) })
	mustPanic("zero stride", func() { Dot(1, []float64{1}, 0, []float64{1}, 1) })
	mustPanic("short x", func() { Dot(3, []float64{1}, 1, []float64{1, 2, 3}, 1) })
}
