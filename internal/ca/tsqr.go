// Package ca implements communication-avoiding QR (TSQR) for tall-skinny
// matrices: the row blocks are factored independently and their triangular
// factors combined pairwise up a binary reduction tree. One reduction tree
// replaces the Θ(n) synchronization points of column-by-column Householder
// QR — the "minimize synchronization, not flops" rule of the keynote.
package ca

import (
	"fmt"

	"exadla/internal/blas"
	"exadla/internal/lapack"
	"exadla/internal/sched"
)

// Factors holds a TSQR factorization: per-leaf Householder factorizations
// of the row blocks plus a binary tree of stacked [R; R] factorizations.
// Q is never formed explicitly; ApplyQT replays the tree.
type Factors struct {
	m, n   int
	rows   []int // row count per leaf
	leaves []leafQR
	levels [][]combineQR
}

type leafQR struct {
	a   []float64 // mb×n, factored in place: R upper, V below
	tau []float64
}

// combineQR is the QR of two stacked n×n triangles [R_top; R_bot],
// stored as a factored dense 2n×n block.
type combineQR struct {
	w   []float64 // 2n×n factored
	tau []float64
	// lo and hi are the indices (at the previous level) of the combined
	// nodes; hi < 0 marks a passthrough of an odd node.
	lo, hi int
}

type nodeHandle struct {
	f     *Factors
	level int // -1 for leaves
	idx   int
}

// Factor computes the TSQR factorization of the m×n column-major matrix a
// (m ≥ n, untouched) split into nblocks row blocks, submitting leaf and
// combine tasks to s and waiting for completion. Each block must have at
// least n rows, so nblocks is capped at m/n.
func Factor(s sched.Scheduler, m, n int, a []float64, lda, nblocks int) *Factors {
	if m < n {
		panic("ca: TSQR requires m ≥ n")
	}
	if nblocks < 1 {
		nblocks = 1
	}
	if max := m / max(n, 1); nblocks > max {
		nblocks = max
	}
	f := &Factors{m: m, n: n}

	// Split rows as evenly as possible.
	base, rem := m/nblocks, m%nblocks
	start := 0
	for b := 0; b < nblocks; b++ {
		rows := base
		if b < rem {
			rows++
		}
		// Copy the block (TSQR leaves own their storage).
		blk := make([]float64, rows*n)
		for j := 0; j < n; j++ {
			copy(blk[j*rows:j*rows+rows], a[start+j*lda:start+j*lda+rows])
		}
		f.rows = append(f.rows, rows)
		f.leaves = append(f.leaves, leafQR{a: blk, tau: make([]float64, n)})
		start += rows
	}

	// Build the full tree structure before submitting any task, so tasks
	// never observe f.levels mid-append.
	prevCount := nblocks
	for prevCount > 1 {
		cur := make([]combineQR, 0, (prevCount+1)/2)
		for i := 0; i < prevCount; i += 2 {
			if i+1 == prevCount {
				cur = append(cur, combineQR{lo: i, hi: -1})
				continue
			}
			cur = append(cur, combineQR{
				w:   make([]float64, 2*n*n),
				tau: make([]float64, n),
				lo:  i, hi: i + 1,
			})
		}
		f.levels = append(f.levels, cur)
		prevCount = len(cur)
	}

	// Leaf factorizations: independent tasks.
	for b := range f.leaves {
		b := b
		s.Submit(sched.Task{
			Name:   "geqrf",
			Writes: []sched.Handle{nodeHandle{f, -1, b}},
			Fn: func() {
				lapack.Geqrf(f.rows[b], n, f.leaves[b].a, f.rows[b], f.leaves[b].tau)
			},
		})
	}

	// Combine tasks, with reads resolved through passthrough nodes to the
	// handles actually written by a task.
	for level := range f.levels {
		for ci := range f.levels[level] {
			node := &f.levels[level][ci]
			if node.hi < 0 {
				continue
			}
			lo, hi := node.lo, node.hi
			nodePtr := node
			rTop := f.nodeR(level-1, lo)
			rBot := f.nodeR(level-1, hi)
			s.Submit(sched.Task{
				Name: "ttqrt",
				Reads: []sched.Handle{
					f.resolveHandle(level-1, lo),
					f.resolveHandle(level-1, hi),
				},
				Writes: []sched.Handle{nodeHandle{f, level, ci}},
				Fn: func() {
					// Stack the two upper triangles.
					w := nodePtr.w
					for j := 0; j < n; j++ {
						for i := 0; i <= j; i++ {
							w[i+j*2*n] = rTop(i, j)
							w[n+i+j*2*n] = rBot(i, j)
						}
						for i := j + 1; i < n; i++ {
							w[i+j*2*n] = 0
							w[n+i+j*2*n] = 0
						}
					}
					lapack.Geqrf(2*n, n, w, 2*n, nodePtr.tau)
				},
			})
		}
	}
	s.Wait()
	return f
}

// resolveHandle follows passthrough chains to the node a task actually
// writes, so dependences attach to real producers.
func (f *Factors) resolveHandle(level, idx int) sched.Handle {
	for level >= 0 && f.levels[level][idx].hi < 0 {
		idx = f.levels[level][idx].lo
		level--
	}
	return nodeHandle{f, level, idx}
}

// nodeR returns an accessor for the n×n upper-triangular R of a tree node.
func (f *Factors) nodeR(level, idx int) func(i, j int) float64 {
	// Resolve passthrough chains.
	for level >= 0 && f.levels[level][idx].hi < 0 {
		idx = f.levels[level][idx].lo
		level--
	}
	if level < 0 {
		leaf := f.leaves[idx]
		rows := f.rows[idx]
		return func(i, j int) float64 { return leaf.a[i+j*rows] }
	}
	node := f.levels[level][idx]
	return func(i, j int) float64 { return node.w[i+j*2*f.n] }
}

// R returns the final n×n upper-triangular factor (dense storage, zeros
// below the diagonal).
func (f *Factors) R() []float64 {
	n := f.n
	top := len(f.levels) - 1
	var at func(i, j int) float64
	if top < 0 {
		at = f.nodeR(-1, 0)
	} else {
		at = f.nodeR(top, 0)
	}
	r := make([]float64, n*n)
	for j := 0; j < n; j++ {
		for i := 0; i <= j; i++ {
			r[i+j*n] = at(i, j)
		}
	}
	return r
}

// ApplyQT computes the first n entries of Qᵀ·b by replaying the tree: leaf
// Householder applications followed by the stacked combine applications.
// b has length m and is not modified.
func (f *Factors) ApplyQT(b []float64) []float64 {
	n := f.n
	// Leaf stage: c_i = (Q_iᵀ b_i)[0:n].
	cs := make([][]float64, len(f.leaves))
	start := 0
	for i, leaf := range f.leaves {
		rows := f.rows[i]
		v := append([]float64(nil), b[start:start+rows]...)
		lapack.Ormqr(blas.Trans, rows, 1, n, leaf.a, rows, leaf.tau, v, rows)
		cs[i] = v[:n]
		start += rows
	}
	// Tree stages.
	for _, level := range f.levels {
		next := make([][]float64, len(level))
		for ci, node := range level {
			if node.hi < 0 {
				next[ci] = cs[node.lo]
				continue
			}
			v := make([]float64, 2*n)
			copy(v[:n], cs[node.lo])
			copy(v[n:], cs[node.hi])
			lapack.Ormqr(blas.Trans, 2*n, 1, n, node.w, 2*n, node.tau, v, 2*n)
			next[ci] = v[:n]
		}
		cs = next
	}
	return cs[0]
}

// LeastSquares solves min‖A·x − b‖₂ with TSQR over nblocks row blocks,
// returning the solution vector of length n.
func LeastSquares(s sched.Scheduler, m, n int, a []float64, lda int, b []float64, nblocks int) ([]float64, error) {
	f := Factor(s, m, n, a, lda, nblocks)
	x := f.ApplyQT(b)
	r := f.R()
	for i := 0; i < n; i++ {
		if r[i+i*n] == 0 {
			return nil, fmt.Errorf("ca: rank-deficient matrix (R[%d][%d] = 0)", i, i)
		}
	}
	blas.Trsv(blas.Upper, blas.NoTrans, blas.NonUnit, n, r, n, x, 1)
	return x, nil
}
