package ca_test

import (
	"math"
	"math/rand"
	"testing"

	"exadla/internal/blas"
	"exadla/internal/ca"
	"exadla/internal/lapack"
	"exadla/internal/matgen"
	"exadla/internal/sched"
)

func TestTSQRMatchesHouseholderR(t *testing.T) {
	// R from TSQR equals R from flat Householder QR up to row signs.
	rng := rand.New(rand.NewSource(1))
	for _, nblocks := range []int{1, 2, 3, 4, 7, 16} {
		m, n := 400, 12
		a := matgen.Dense[float64](rng, m, n)
		r := sched.New(4)
		f := ca.Factor(r, m, n, a, m, nblocks)
		r.Shutdown()
		rTSQR := f.R()

		aCopy := append([]float64(nil), a...)
		tau := make([]float64, n)
		lapack.Geqrf(m, n, aCopy, m, tau)
		for j := 0; j < n; j++ {
			for i := 0; i <= j; i++ {
				got := math.Abs(rTSQR[i+j*n])
				want := math.Abs(aCopy[i+j*m])
				if math.Abs(got-want) > 1e-10*(1+want) {
					t.Fatalf("nblocks=%d: |R[%d,%d]| = %v, want %v", nblocks, i, j, got, want)
				}
			}
		}
	}
}

func TestTSQRDeterministicAcrossWorkers(t *testing.T) {
	// The reduction tree is fixed, so results must be bitwise identical
	// regardless of worker count.
	rng := rand.New(rand.NewSource(2))
	m, n := 300, 8
	a := matgen.Dense[float64](rng, m, n)
	var rs [][]float64
	for _, workers := range []int{1, 4} {
		r := sched.New(workers)
		f := ca.Factor(r, m, n, a, m, 8)
		r.Shutdown()
		rs = append(rs, f.R())
	}
	for i := range rs[0] {
		if rs[0][i] != rs[1][i] {
			t.Fatalf("R differs across worker counts at %d", i)
		}
	}
}

func TestTSQRNormPreservation(t *testing.T) {
	// ‖Qᵀb over full tree‖ combined with residual: ‖b‖² = ‖(Qᵀb)[0:n]‖² +
	// ‖residual part‖², so ‖ApplyQT(b)‖ ≤ ‖b‖.
	rng := rand.New(rand.NewSource(3))
	m, n := 500, 10
	a := matgen.Dense[float64](rng, m, n)
	b := matgen.Dense[float64](rng, m, 1)
	r := sched.New(2)
	f := ca.Factor(r, m, n, a, m, 6)
	r.Shutdown()
	c := f.ApplyQT(b)
	if len(c) != n {
		t.Fatalf("ApplyQT length %d, want %d", len(c), n)
	}
	if blas.Nrm2(n, c, 1) > blas.Nrm2(m, b, 1)*(1+1e-12) {
		t.Error("ApplyQT inflated the norm")
	}
}

func TestTSQRLeastSquaresMatchesGels(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m, n := 600, 15
	a := matgen.Dense[float64](rng, m, n)
	b := matgen.Dense[float64](rng, m, 1)
	r := sched.New(4)
	x, err := ca.LeastSquares(r, m, n, a, m, b, 8)
	r.Shutdown()
	if err != nil {
		t.Fatal(err)
	}

	aCopy := append([]float64(nil), a...)
	bCopy := append([]float64(nil), b...)
	if err := lapack.Gels(m, n, aCopy, m, bCopy); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if math.Abs(x[i]-bCopy[i]) > 1e-9*(1+math.Abs(bCopy[i])) {
			t.Fatalf("x[%d] = %v, Gels %v", i, x[i], bCopy[i])
		}
	}
}

func TestTSQRExactSystem(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, n := 256, 16
	a := matgen.Dense[float64](rng, m, n)
	xTrue := matgen.Dense[float64](rng, n, 1)
	b := make([]float64, m)
	blas.Gemv(blas.NoTrans, m, n, 1, a, m, xTrue, 1, 0, b, 1)
	r := sched.New(2)
	x, err := ca.LeastSquares(r, m, n, a, m, b, 5)
	r.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-9 {
			t.Fatalf("x[%d] = %v want %v", i, x[i], xTrue[i])
		}
	}
}

func TestTSQRRankDeficient(t *testing.T) {
	m, n := 50, 4
	a := make([]float64, m*n) // zero columns → rank deficient
	b := make([]float64, m)
	r := sched.New(1)
	defer r.Shutdown()
	if _, err := ca.LeastSquares(r, m, n, a, m, b, 2); err == nil {
		t.Error("expected rank-deficiency error")
	}
}

func TestTSQRBlockCountClamped(t *testing.T) {
	// More blocks than m/n must be clamped, not panic.
	rng := rand.New(rand.NewSource(6))
	m, n := 40, 10
	a := matgen.Dense[float64](rng, m, n)
	r := sched.New(2)
	defer r.Shutdown()
	f := ca.Factor(r, m, n, a, m, 1000)
	rr := f.R()
	if len(rr) != n*n {
		t.Fatal("bad R size")
	}
}

func TestTSQRWithRecorder(t *testing.T) {
	// The recorder path exposes the task graph: leaves + combines. With 8
	// blocks there are 8 geqrf and 7 ttqrt tasks; the critical path spans
	// one leaf plus ceil(log2(8)) = 3 combines.
	rng := rand.New(rand.NewSource(7))
	m, n := 320, 8
	a := matgen.Dense[float64](rng, m, n)
	rec := sched.NewRecorder()
	ca.Factor(rec, m, n, a, m, 8)
	g := rec.Graph()
	counts := map[string]int{}
	for _, node := range g.Nodes {
		counts[node.Name]++
	}
	if counts["geqrf"] != 8 {
		t.Errorf("geqrf count %d, want 8", counts["geqrf"])
	}
	if counts["ttqrt"] != 7 {
		t.Errorf("ttqrt count %d, want 7", counts["ttqrt"])
	}
}
