package mixed_test

import (
	"math"
	"math/rand"
	"testing"

	"exadla/internal/blas"
	"exadla/internal/lapack"
	"exadla/internal/matgen"
	"exadla/internal/mixed"
)

// forwardError returns ‖x − xTrue‖∞ / ‖xTrue‖∞.
func forwardError(x, xTrue []float64) float64 {
	var d, n float64
	for i := range x {
		if v := math.Abs(x[i] - xTrue[i]); v > d {
			d = v
		}
		if v := math.Abs(xTrue[i]); v > n {
			n = v
		}
	}
	return d / n
}

func TestSolveLUWellConditioned(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 10, 100, 300} {
		a := matgen.WithCond[float64](rng, n, n, 100)
		xTrue := matgen.Dense[float64](rng, n, 1)
		b := make([]float64, n)
		blas.Gemv(blas.NoTrans, n, n, 1, a, n, xTrue, 1, 0, b, 1)
		x := make([]float64, n)
		res, err := mixed.SolveLU(n, a, n, b, x)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !res.Converged {
			t.Errorf("n=%d: did not converge (fellback=%v)", n, res.FellBack)
		}
		if res.FellBack {
			t.Errorf("n=%d: unnecessary fallback", n)
		}
		// Mixed precision must deliver (near) double precision accuracy.
		if fe := forwardError(x, xTrue); fe > 1e-9*float64(n) {
			t.Errorf("n=%d: forward error %g", n, fe)
		}
	}
}

func TestSolveLUAccuracyBeatsPureSingle(t *testing.T) {
	// The whole point: refined mixed precision is far more accurate than a
	// pure float32 solve.
	rng := rand.New(rand.NewSource(2))
	n := 200
	a := matgen.WithCond[float64](rng, n, n, 1e4)
	xTrue := matgen.Dense[float64](rng, n, 1)
	b := make([]float64, n)
	blas.Gemv(blas.NoTrans, n, n, 1, a, n, xTrue, 1, 0, b, 1)

	x := make([]float64, n)
	if _, err := mixed.SolveLU(n, a, n, b, x); err != nil {
		t.Fatal(err)
	}
	feMixed := forwardError(x, xTrue)

	// Pure float32 solve.
	a32 := make([]float32, n*n)
	b32 := make([]float32, n)
	for i := range a32 {
		a32[i] = float32(a[i])
	}
	for i := range b32 {
		b32[i] = float32(b[i])
	}
	ipiv := make([]int, n)
	if err := lapack.Gesv(n, 1, a32, n, ipiv, b32, n); err != nil {
		t.Fatal(err)
	}
	x32 := make([]float64, n)
	for i := range b32 {
		x32[i] = float64(b32[i])
	}
	feSingle := forwardError(x32, xTrue)
	if feMixed > feSingle/100 {
		t.Errorf("mixed error %g not ≪ single error %g", feMixed, feSingle)
	}
}

func TestSolveLUIllConditionedFallsBack(t *testing.T) {
	// cond ≈ 1/ε₃₂ ⇒ the float32 factors stop being a contraction and the
	// solver must fall back to float64 — and still produce a good answer.
	rng := rand.New(rand.NewSource(3))
	n := 100
	a := matgen.WithCond[float64](rng, n, n, 1e9)
	xTrue := matgen.Dense[float64](rng, n, 1)
	b := make([]float64, n)
	blas.Gemv(blas.NoTrans, n, n, 1, a, n, xTrue, 1, 0, b, 1)
	x := make([]float64, n)
	res, err := mixed.SolveLU(n, a, n, b, x)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FellBack && !res.Converged {
		t.Error("neither converged nor fell back")
	}
	// Whatever path was taken, the answer must be double-precision good
	// relative to the conditioning (κ·ε ≈ 1e9·1e-16 = 1e-7 forward error).
	if fe := forwardError(x, xTrue); fe > 1e-4 {
		t.Errorf("forward error %g", fe)
	}
}

func TestSolveLUSingular(t *testing.T) {
	n := 5
	a := make([]float64, n*n) // zero matrix
	b := make([]float64, n)
	x := make([]float64, n)
	if _, err := mixed.SolveLU(n, a, n, b, x); err == nil {
		t.Error("expected error for singular matrix")
	}
}

func TestSolveCholesky(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 20, 150} {
		a := matgen.SPDWithCond[float64](rng, n, 1e3)
		xTrue := matgen.Dense[float64](rng, n, 1)
		b := make([]float64, n)
		blas.Symv(blas.Lower, n, 1, a, n, xTrue, 1, 0, b, 1)
		x := make([]float64, n)
		res, err := mixed.SolveCholesky(n, a, n, b, x)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !res.Converged && !res.FellBack {
			t.Errorf("n=%d: no convergence signal", n)
		}
		if fe := forwardError(x, xTrue); fe > 1e-8*float64(n+1) {
			t.Errorf("n=%d: forward error %g", n, fe)
		}
	}
}

func TestSolveCholeskyNotPDFallsBackToError(t *testing.T) {
	n := 4
	a := matgen.Identity[float64](n)
	a[2+2*n] = -5 // indefinite
	b := []float64{1, 1, 1, 1}
	x := make([]float64, n)
	if _, err := mixed.SolveCholesky(n, a, n, b, x); err == nil {
		t.Error("expected error for indefinite matrix")
	}
}

func TestIterationCountGrowsWithCondition(t *testing.T) {
	// More ill-conditioned ⇒ slower contraction ⇒ more refinement sweeps.
	rng := rand.New(rand.NewSource(5))
	n := 150
	iters := make([]int, 0, 3)
	for _, cond := range []float64{1e1, 1e4, 1e6} {
		a := matgen.WithCond[float64](rng, n, n, cond)
		xTrue := matgen.Dense[float64](rng, n, 1)
		b := make([]float64, n)
		blas.Gemv(blas.NoTrans, n, n, 1, a, n, xTrue, 1, 0, b, 1)
		x := make([]float64, n)
		res, err := mixed.SolveLU(n, a, n, b, x)
		if err != nil {
			t.Fatal(err)
		}
		iters = append(iters, res.Iterations)
	}
	if iters[2] < iters[0] {
		t.Errorf("iterations did not grow with condition number: %v", iters)
	}
}

func TestInputsNotClobbered(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 40
	a := matgen.WithCond[float64](rng, n, n, 10)
	b := matgen.Dense[float64](rng, n, 1)
	aCopy := append([]float64(nil), a...)
	bCopy := append([]float64(nil), b...)
	x := make([]float64, n)
	if _, err := mixed.SolveLU(n, a, n, b, x); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != aCopy[i] {
			t.Fatal("A was modified")
		}
	}
	for i := range b {
		if b[i] != bCopy[i] {
			t.Fatal("b was modified")
		}
	}
}
