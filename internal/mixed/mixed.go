// Package mixed implements mixed-precision iterative refinement solvers —
// the library's analogue of LAPACK's dsgesv/dsposv and one of the keynote's
// headline "new rules": do the O(n³) factorization in fast low precision,
// then recover full double-precision accuracy with cheap O(n²) refinement
// sweeps, falling back to a full double-precision solve when the matrix is
// too ill-conditioned for the low-precision factors to act as a contraction.
package mixed

import (
	"errors"
	"math"

	"exadla/internal/blas"
	"exadla/internal/lapack"
)

// Result reports how a mixed-precision solve converged.
type Result struct {
	// Iterations is the number of refinement sweeps performed.
	Iterations int
	// Converged is true if the forward-error criterion was met in low
	// precision; false means the solver fell back to full float64.
	Converged bool
	// FellBack is true if the float64 fallback path produced the answer.
	FellBack bool
	// ResidualNorm is the final ∞-norm of b − A·x.
	ResidualNorm float64
}

// MaxIterations bounds the refinement sweeps before declaring failure, the
// same limit (30) reference dsgesv uses.
const MaxIterations = 30

// ErrSingular is returned when both the float32 and the float64
// factorizations encounter an exactly singular pivot.
var ErrSingular = errors.New("mixed: matrix is singular")

// SolveLU solves A·x = b (A n×n column-major, untouched) by factorizing a
// float32 copy of A with partial-pivoting LU and refining in float64.
// x must have length n.
func SolveLU(n int, a []float64, lda int, b, x []float64) (Result, error) {
	// Factor in float32.
	a32 := make([]float32, n*n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			a32[i+j*n] = float32(a[i+j*lda])
		}
	}
	ipiv := make([]int, n)
	factErr := lapack.Getrf(n, n, a32, n, ipiv)
	solve32 := func(r []float64, d []float64) {
		r32 := make([]float32, n)
		for i, v := range r {
			r32[i] = float32(v)
		}
		lapack.Getrs(blas.NoTrans, n, 1, a32, n, ipiv, r32, n)
		for i, v := range r32 {
			d[i] = float64(v)
		}
	}
	fallback := func() (Result, error) {
		a64 := make([]float64, n*n)
		lapack.Lacpy(lapack.General, n, n, a, lda, a64, n)
		copy(x, b[:n])
		ipiv64 := make([]int, n)
		if err := lapack.Gesv(n, 1, a64, n, ipiv64, x, n); err != nil {
			return Result{FellBack: true}, ErrSingular
		}
		res := refineResidualNorm(n, a, lda, b, x)
		return Result{FellBack: true, ResidualNorm: res}, nil
	}
	if factErr != nil {
		return fallback()
	}
	return refine(n, a, lda, b, x, solve32, fallback)
}

// SolveCholesky solves the SPD system A·x = b by factorizing a float32 copy
// with Cholesky (lower) and refining in float64. Only the lower triangle of
// A is referenced.
func SolveCholesky(n int, a []float64, lda int, b, x []float64) (Result, error) {
	a32 := make([]float32, n*n)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			a32[i+j*n] = float32(a[i+j*lda])
		}
	}
	factErr := lapack.Potrf(blas.Lower, n, a32, n)
	solve32 := func(r []float64, d []float64) {
		r32 := make([]float32, n)
		for i, v := range r {
			r32[i] = float32(v)
		}
		lapack.Potrs(blas.Lower, n, 1, a32, n, r32, n)
		for i, v := range r32 {
			d[i] = float64(v)
		}
	}
	fallback := func() (Result, error) {
		a64 := make([]float64, n*n)
		lapack.Lacpy(blas.Lower, n, n, a, lda, a64, n)
		copy(x, b[:n])
		if err := lapack.Posv(blas.Lower, n, 1, a64, n, x, n); err != nil {
			return Result{FellBack: true}, err
		}
		res := symResidualNorm(n, a, lda, b, x)
		return Result{FellBack: true, ResidualNorm: res}, nil
	}
	if factErr != nil {
		return fallback()
	}
	fb := func() (Result, error) { return fallback() }
	return refineSym(n, a, lda, b, x, solve32, fb)
}

// refine runs the double-precision refinement loop around a low-precision
// solve for a general matrix.
func refine(n int, a []float64, lda int, b, x []float64, solve32 func(r, d []float64), fallback func() (Result, error)) (Result, error) {
	anorm := lapack.Lange(lapack.InfNorm, n, n, a, lda)
	eps := lapack.Epsilon[float64]()
	// Convergence threshold from dsgesv: ‖r‖ ≤ ‖x‖·‖A‖·ε·√n.
	sqrtN := sqrtFloat(float64(n))

	solve32(b, x)
	r := make([]float64, n)
	d := make([]float64, n)
	var res Result
	for it := 1; it <= MaxIterations; it++ {
		res.Iterations = it
		// r = b − A·x in full precision.
		copy(r, b[:n])
		blas.Gemv(blas.NoTrans, n, n, -1, a, lda, x, 1, 1, r, 1)
		rnorm := infNorm(r)
		xnorm := infNorm(x)
		res.ResidualNorm = rnorm
		if rnorm <= xnorm*anorm*eps*sqrtN {
			res.Converged = true
			return res, nil
		}
		solve32(r, d)
		blas.Axpy(n, 1, d, 1, x, 1)
	}
	fres, err := fallback()
	fres.Iterations = res.Iterations
	return fres, err
}

// refineSym is refine for symmetric matrices stored in the lower triangle.
func refineSym(n int, a []float64, lda int, b, x []float64, solve32 func(r, d []float64), fallback func() (Result, error)) (Result, error) {
	anorm := lapack.Lansy(lapack.InfNorm, blas.Lower, n, a, lda)
	eps := lapack.Epsilon[float64]()
	sqrtN := sqrtFloat(float64(n))

	solve32(b, x)
	r := make([]float64, n)
	d := make([]float64, n)
	var res Result
	for it := 1; it <= MaxIterations; it++ {
		res.Iterations = it
		copy(r, b[:n])
		blas.Symv(blas.Lower, n, -1, a, lda, x, 1, 1, r, 1)
		rnorm := infNorm(r)
		xnorm := infNorm(x)
		res.ResidualNorm = rnorm
		if rnorm <= xnorm*anorm*eps*sqrtN {
			res.Converged = true
			return res, nil
		}
		solve32(r, d)
		blas.Axpy(n, 1, d, 1, x, 1)
	}
	fres, err := fallback()
	fres.Iterations = res.Iterations
	return fres, err
}

func refineResidualNorm(n int, a []float64, lda int, b, x []float64) float64 {
	r := append([]float64(nil), b[:n]...)
	blas.Gemv(blas.NoTrans, n, n, -1, a, lda, x, 1, 1, r, 1)
	return infNorm(r)
}

func symResidualNorm(n int, a []float64, lda int, b, x []float64) float64 {
	r := append([]float64(nil), b[:n]...)
	blas.Symv(blas.Lower, n, -1, a, lda, x, 1, 1, r, 1)
	return infNorm(r)
}

func infNorm(v []float64) float64 {
	var m float64
	for _, x := range v {
		if x < 0 {
			x = -x
		}
		if x > m {
			m = x
		}
	}
	return m
}

func sqrtFloat(x float64) float64 { return math.Sqrt(x) }
