package mixed

import (
	"exadla/internal/blas"
	"exadla/internal/half"
	"exadla/internal/lapack"
)

// SolveLUHalf solves A·x = b with a three-precision scheme modeled on the
// fp16/tensor-core refinement work that followed the keynote: the
// factorization is computed on half-precision-rounded data with the factors
// stored at half precision (fp16 storage, fp32 accumulate — the tensor-core
// model), correction solves run in float32, and residuals in float64.
//
// Because ε₁₆ = 2⁻¹⁰, the scheme only contracts for condition numbers up to
// ~10³ and needs more sweeps than the float32 scheme; beyond that it falls
// back to the full float64 solve. The matrix is pre-scaled by its largest
// entry so the factorization stays inside fp16's tiny exponent range.
func SolveLUHalf(n int, a []float64, lda int, b, x []float64) (Result, error) {
	// Scale so entries sit well inside fp16 range.
	amax := lapack.Lange(lapack.MaxAbs, n, n, a, lda)
	scale := 1.0
	if amax > 0 {
		scale = 1 / amax
	}

	// Round the scaled matrix to fp16 storage, then factor in float32.
	a32 := make([]float32, n*n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			a32[i+j*n] = half.FromFloat64(a[i+j*lda] * scale).Float32()
		}
	}
	ipiv := make([]int, n)
	factErr := lapack.Getrf(n, n, a32, n, ipiv)
	// Store the factors at half precision (what the hardware would keep).
	half.RoundSlice32(a32)

	solveHalf := func(r []float64, d []float64) {
		r32 := make([]float32, n)
		for i, v := range r {
			r32[i] = float32(v * scale) // fold in the matrix scaling
		}
		lapack.Getrs(blas.NoTrans, n, 1, a32, n, ipiv, r32, n)
		for i, v := range r32 {
			d[i] = float64(v)
		}
	}
	fallback := func() (Result, error) {
		a64 := make([]float64, n*n)
		lapack.Lacpy(lapack.General, n, n, a, lda, a64, n)
		copy(x, b[:n])
		ipiv64 := make([]int, n)
		if err := lapack.Gesv(n, 1, a64, n, ipiv64, x, n); err != nil {
			return Result{FellBack: true}, ErrSingular
		}
		return Result{FellBack: true, ResidualNorm: refineResidualNorm(n, a, lda, b, x)}, nil
	}
	if factErr != nil {
		return fallback()
	}
	return refine(n, a, lda, b, x, solveHalf, fallback)
}
