package mixed_test

import (
	"math/rand"
	"testing"

	"exadla/internal/blas"
	"exadla/internal/matgen"
	"exadla/internal/mixed"
)

func TestSolveLUHalfWellConditioned(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{10, 100, 250} {
		a := matgen.WithCond[float64](rng, n, n, 10)
		xTrue := matgen.Dense[float64](rng, n, 1)
		b := make([]float64, n)
		blas.Gemv(blas.NoTrans, n, n, 1, a, n, xTrue, 1, 0, b, 1)
		x := make([]float64, n)
		res, err := mixed.SolveLUHalf(n, a, n, b, x)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !res.Converged {
			t.Errorf("n=%d: half-precision refinement did not converge (%+v)", n, res)
		}
		if fe := forwardError(x, xTrue); fe > 1e-9*float64(n) {
			t.Errorf("n=%d: forward error %g", n, fe)
		}
	}
}

func TestSolveLUHalfNeedsMoreSweepsThanSingle(t *testing.T) {
	// ε₁₆ ≫ ε₃₂, so the fp16 contraction is slower: more sweeps at equal
	// conditioning.
	rng := rand.New(rand.NewSource(2))
	n := 150
	a := matgen.WithCond[float64](rng, n, n, 50)
	xTrue := matgen.Dense[float64](rng, n, 1)
	b := make([]float64, n)
	blas.Gemv(blas.NoTrans, n, n, 1, a, n, xTrue, 1, 0, b, 1)

	x := make([]float64, n)
	resHalf, err := mixed.SolveLUHalf(n, a, n, b, x)
	if err != nil {
		t.Fatal(err)
	}
	resSingle, err := mixed.SolveLU(n, a, n, b, x)
	if err != nil {
		t.Fatal(err)
	}
	if !resHalf.Converged || !resSingle.Converged {
		t.Fatalf("convergence: half=%+v single=%+v", resHalf, resSingle)
	}
	if resHalf.Iterations <= resSingle.Iterations {
		t.Errorf("half sweeps (%d) not more than single sweeps (%d)",
			resHalf.Iterations, resSingle.Iterations)
	}
}

func TestSolveLUHalfFallsBackWhenTooIllConditioned(t *testing.T) {
	// cond ≫ 1/ε₁₆ ≈ 10³: fp16 factors cannot contract; the answer must
	// still come out right via fallback.
	rng := rand.New(rand.NewSource(3))
	n := 100
	a := matgen.WithCond[float64](rng, n, n, 1e7)
	xTrue := matgen.Dense[float64](rng, n, 1)
	b := make([]float64, n)
	blas.Gemv(blas.NoTrans, n, n, 1, a, n, xTrue, 1, 0, b, 1)
	x := make([]float64, n)
	res, err := mixed.SolveLUHalf(n, a, n, b, x)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged && !res.FellBack {
		t.Error("neither converged nor fell back")
	}
	if fe := forwardError(x, xTrue); fe > 1e-6 {
		t.Errorf("forward error %g", fe)
	}
}

func TestSolveLUHalfScalingHandlesLargeEntries(t *testing.T) {
	// Entries far outside fp16 range must be handled by the pre-scaling,
	// not overflow to Inf.
	rng := rand.New(rand.NewSource(4))
	n := 60
	a := matgen.WithCond[float64](rng, n, n, 10)
	for i := range a {
		a[i] *= 1e8 // way beyond fp16 max of 65504
	}
	xTrue := matgen.Dense[float64](rng, n, 1)
	b := make([]float64, n)
	blas.Gemv(blas.NoTrans, n, n, 1, a, n, xTrue, 1, 0, b, 1)
	x := make([]float64, n)
	res, err := mixed.SolveLUHalf(n, a, n, b, x)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("scaled solve did not converge: %+v", res)
	}
	if fe := forwardError(x, xTrue); fe > 1e-8*float64(n) {
		t.Errorf("forward error %g", fe)
	}
}
