// Package core implements the tile algorithms at the heart of the
// reproduction: Cholesky, LU (incremental pivoting), and QR factorizations
// expressed as DAGs of tile kernels submitted to a dataflow scheduler, plus
// the fork–join baselines the extreme-scale argument compares against.
//
// Every algorithm comes in two variants sharing the same tile kernels:
//
//   - the dataflow variant submits all tasks up front and synchronizes once,
//     so the scheduler overlaps independent work across iteration boundaries;
//   - the ForkJoin variant inserts a barrier (Scheduler.Wait) after each
//     phase of each iteration, modelling the block-synchronous LAPACK-style
//     execution whose idle time the talk attacks.
//
// Factorization errors discovered inside tasks (a non-positive-definite
// diagonal tile, a singular pivot) are captured in an errState; once set,
// remaining tasks turn into no-ops so the DAG drains quickly, and the first
// error is returned after the final Wait.
package core

import (
	"sync"

	"exadla/internal/blas"
	"exadla/internal/sched"
	"exadla/internal/tile"
)

// errState collects the first error raised by any task and lets subsequent
// tasks cheaply discover that the computation is doomed.
type errState struct {
	mu  sync.Mutex
	err error
}

func (e *errState) set(err error) {
	e.mu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.mu.Unlock()
}

func (e *errState) get() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

func (e *errState) failed() bool { return e.get() != nil }

// Priority bands implement panel lookahead. A task's urgency is keyed to
// the panel column it feeds — the column of its target tile — not the step
// that submitted it: the trailing updates that complete column k+1 outrank
// the bulk updates of later columns, so the next panel factorization
// becomes ready (and overlaps the rest of the trailing update) as early as
// the DAG allows. This is the lookahead trick that lets HPL hide panel
// factorization behind the update, generalized to every column. Within one
// column, panel kernels outrank solves outrank updates, matching their
// order on the critical path.
func prioPanel(col, cols int) int  { return 3*(cols-col) + 2 }
func prioSolve(col, cols int) int  { return 3*(cols-col) + 1 }
func prioUpdate(col, cols int) int { return 3 * (cols - col) }

// Gemm submits tile tasks computing C ← α·op(A)·op(B) + β·C over tiled
// matrices. Tile geometries must agree (same NB, conforming dimensions).
// The tasks are submitted to s; the caller is responsible for Wait.
func Gemm[F blas.Float](s sched.Scheduler, transA, transB blas.Transpose, alpha F, a, b *tile.Matrix[F], beta F, c *tile.Matrix[F]) {
	// Logical tile dims of op(A): mi×ki, of op(B): ki×nj.
	amt, ant := a.MT, a.NT
	if transA == blas.Trans {
		amt, ant = ant, amt
	}
	bmt, bnt := b.MT, b.NT
	if transB == blas.Trans {
		bmt, bnt = bnt, bmt
	}
	if amt != c.MT || bnt != c.NT || ant != bmt {
		panic("core: Gemm tile dimensions mismatch")
	}
	kt := ant
	for i := 0; i < c.MT; i++ {
		for j := 0; j < c.NT; j++ {
			i, j := i, j
			reads := make([]sched.Handle, 0, 2*kt)
			for l := 0; l < kt; l++ {
				ai, aj := i, l
				if transA == blas.Trans {
					ai, aj = l, i
				}
				bi, bj := l, j
				if transB == blas.Trans {
					bi, bj = j, l
				}
				reads = append(reads, a.Handle(ai, aj), b.Handle(bi, bj))
			}
			s.Submit(sched.Task{
				Name:   "gemm",
				Reads:  reads,
				Writes: []sched.Handle{c.Handle(i, j)},
				Fn: func() {
					ct := c.Tile(i, j)
					m, n := c.TileRows(i), c.TileCols(j)
					bb := beta
					for l := 0; l < kt; l++ {
						ai, aj := i, l
						if transA == blas.Trans {
							ai, aj = l, i
						}
						bi, bj := l, j
						if transB == blas.Trans {
							bi, bj = j, l
						}
						at := a.Tile(ai, aj)
						bt := b.Tile(bi, bj)
						k := a.TileCols(aj)
						if transA == blas.Trans {
							k = a.TileRows(ai)
						}
						blas.Gemm(transA, transB, m, n, k,
							alpha, at, a.TileRows(ai), bt, b.TileRows(bi), bb, ct, m)
						bb = 1
					}
				},
			})
		}
	}
}

// MatVec computes y ← α·op(A)·x + β·y for a tiled matrix against dense
// vectors, sequentially; it exists for drivers and residual checks.
func MatVec[F blas.Float](trans blas.Transpose, alpha F, a *tile.Matrix[F], x []F, beta F, y []F) {
	ylen := a.M
	if trans == blas.Trans {
		ylen = a.N
	}
	if beta != 1 {
		for i := 0; i < ylen; i++ {
			y[i] *= beta
		}
	}
	for ti := 0; ti < a.MT; ti++ {
		tr := a.TileRows(ti)
		for tj := 0; tj < a.NT; tj++ {
			tc := a.TileCols(tj)
			t := a.Tile(ti, tj)
			if trans == blas.NoTrans {
				blas.Gemv(blas.NoTrans, tr, tc, alpha, t, tr, x[tj*a.NB:tj*a.NB+tc], 1, 1, y[ti*a.NB:ti*a.NB+tr], 1)
			} else {
				blas.Gemv(blas.Trans, tr, tc, alpha, t, tr, x[ti*a.NB:ti*a.NB+tr], 1, 1, y[tj*a.NB:tj*a.NB+tc], 1)
			}
		}
	}
}
