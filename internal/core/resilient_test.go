package core_test

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"exadla/internal/blas"
	"exadla/internal/core"
	"exadla/internal/ft"
	"exadla/internal/matgen"
	"exadla/internal/metrics"
	"exadla/internal/sched"
	"exadla/internal/tile"
)

// cleanCholesky returns the fault-free tile Cholesky factor of the seeded
// SPD test matrix, as a reference for the recovery tests.
func cleanCholesky(t *testing.T, n, nb int, seed int64) (input, factor []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	aD := matgen.DiagDomSPD[float64](rng, n)
	a := tile.FromColMajor(n, n, aD, n, nb)
	r := sched.New(4)
	defer r.Shutdown()
	if err := core.Cholesky(r, a); err != nil {
		t.Fatal(err)
	}
	return aD, a.ToColMajor()
}

// lowerDiff is the max-abs difference over the meaningful (lower) triangle.
func lowerDiff(n int, a, b []float64) float64 {
	var d float64
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			if v := math.Abs(a[i+j*n] - b[i+j*n]); v > d {
				d = v
			}
		}
	}
	return d
}

func TestResilientCholeskyCleanMatchesPlain(t *testing.T) {
	const n, nb, seed = 192, 48, 31
	aD, want := cleanCholesky(t, n, nb, seed)
	a := tile.FromColMajor(n, n, aD, n, nb)
	var stats ft.Stats
	r := sched.New(4, sched.WithRetry(3, 0))
	defer r.Shutdown()
	if err := core.ResilientCholesky(r, a, core.FTOptions{Stats: &stats}); err != nil {
		t.Fatal(err)
	}
	// No faults injected: same kernels in the same DAG, so the factor is
	// bitwise identical and nothing is detected.
	if d := lowerDiff(n, a.ToColMajor(), want); d != 0 {
		t.Errorf("clean resilient factor differs from plain by %g", d)
	}
	if stats.Detected.Load() != 0 {
		t.Errorf("clean run detected %d faults", stats.Detected.Load())
	}
}

// TestResilientCholeskyRecoversFromInjection is the end-to-end ABFT
// acceptance test: mid-factorization corruption of a freshly factored
// diagonal tile and of a panel tile before its triangular solve is
// detected, corrected in place, and re-verified through the scheduler's
// retry path, and the final factor matches the fault-free run to a scaled
// tolerance.
func TestResilientCholeskyRecoversFromInjection(t *testing.T) {
	const n, nb, seed = 192, 48, 31
	aD, want := cleanCholesky(t, n, nb, seed)
	a := tile.FromColMajor(n, n, aD, n, nb)

	inj := ft.NewInjector(7)
	var stats ft.Stats
	hook := func(step int, m *tile.Matrix[float64]) {
		switch step {
		case 1:
			// Corrupt the freshly factored diagonal tile (post-potrf,
			// pre-verify): caught by the lower-triangle witness. The noise
			// magnitude sits well above the scaled detection tolerance (a
			// FlipBit on a small entry can land below it, which is exactly
			// the "numerically irrelevant" regime the tolerance ignores).
			inj.AddNoise(m.Tile(1, 1), 2+1*m.TileRows(1), m.TileRows(1), 1e-3)
			stats.Injected.Add(1)
		case 2:
			// Corrupt a panel tile before its trsm: the error propagates
			// through the solve into several columns of row r, each located
			// and corrected by the post-trsm verification.
			inj.AddNoise(m.Tile(3, 2), 5+4*m.TileRows(3), m.TileRows(3), 0.5)
			stats.Injected.Add(1)
		}
	}

	var retried int
	r := sched.New(4,
		sched.WithRetry(3, 0),
		sched.WithFailureObserver(func(ev sched.FailureEvent) {
			if ev.Retrying {
				retried++
			}
		}),
	)
	defer r.Shutdown()
	err := core.ResilientCholesky(r, a, core.FTOptions{InjectHook: hook, Stats: &stats})
	if err != nil {
		t.Fatalf("resilient factorization failed to recover: %v", err)
	}
	if stats.Detected.Load() < 2 {
		t.Errorf("detected %d corruption events, want >= 2", stats.Detected.Load())
	}
	if stats.Corrected.Load() < 2 {
		t.Errorf("corrected %d faults, want >= 2", stats.Corrected.Load())
	}
	if stats.Unlocated.Load() != 0 {
		t.Errorf("%d unlocatable faults in a single-fault-per-column scenario", stats.Unlocated.Load())
	}
	if retried == 0 {
		t.Error("recovery did not go through the scheduler retry path")
	}
	// The corrected factor must match the fault-free factor to the scaled
	// detection tolerance (corrections cancel the injected deltas up to
	// checksum rounding drift).
	tol := ft.DetectTol(normLower(n, aD), n)
	if d := lowerDiff(n, a.ToColMajor(), want); d > tol {
		t.Errorf("recovered factor differs from fault-free by %g (tol %g)", d, tol)
	}
}

func normLower(n int, a []float64) float64 {
	var norm float64
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			if v := math.Abs(a[i+j*n]); v > norm {
				norm = v
			}
		}
	}
	return norm
}

// TestResilientCholeskyUnlocatableFails: corruption the checksums can see
// but not locate (two faults in one column) must fail the factorization
// rather than silently mis-correct.
func TestResilientCholeskyUnlocatableFails(t *testing.T) {
	const n, nb, seed = 96, 32, 31
	rng := rand.New(rand.NewSource(seed))
	aD := matgen.DiagDomSPD[float64](rng, n)
	a := tile.FromColMajor(n, n, aD, n, nb)
	var stats ft.Stats
	hook := func(step int, m *tile.Matrix[float64]) {
		if step != 0 {
			return
		}
		ld := m.TileRows(1)
		m.Tile(1, 0)[3+2*ld] += 1000
		m.Tile(1, 0)[9+2*ld] -= 999.9999
	}
	r := sched.New(2, sched.WithRetry(2, 0))
	defer r.Shutdown()
	err := core.ResilientCholesky(r, a, core.FTOptions{InjectHook: hook, Stats: &stats})
	if err == nil {
		t.Fatal("unlocatable corruption did not fail the factorization")
	}
	var ce *ft.CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v does not unwrap to a CorruptionError", err)
	}
	if stats.Unlocated.Load() == 0 {
		t.Error("no unlocatable faults recorded")
	}
}

func TestResilientCholeskyVerifyEvery(t *testing.T) {
	const n, nb, seed = 192, 48, 31
	aD, want := cleanCholesky(t, n, nb, seed)
	a := tile.FromColMajor(n, n, aD, n, nb)
	r := sched.New(4, sched.WithRetry(3, 0))
	defer r.Shutdown()
	err := core.ResilientCholesky(r, a, core.FTOptions{VerifyEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d := lowerDiff(n, a.ToColMajor(), want); d != 0 {
		t.Errorf("VerifyEvery=2 factor differs from plain by %g", d)
	}
}

// TestCholeskyChaosWithRetryCompletes is the seeded chaos acceptance run:
// p = 0.05 task-kill probability over the n=512 tile Cholesky completes with
// a nil error, a bitwise-correct factor (chaos kills strike before the task
// body, so every kernel still executes exactly once), and >0 retried tasks
// in the runtime metrics.
func TestCholeskyChaosWithRetryCompletes(t *testing.T) {
	const n, nb, seed = 512, 64, 42
	aD, want := cleanCholesky(t, n, nb, seed)
	a := tile.FromColMajor(n, n, aD, n, nb)
	reg := metrics.New()
	r := sched.New(4,
		sched.WithMetrics(reg),
		sched.WithRetry(50, 0),
		sched.WithChaos(2016, 0.05, nil),
	)
	defer r.Shutdown()
	if err := core.Cholesky(r, a); err != nil {
		t.Fatalf("chaos run failed: %v", err)
	}
	if d := lowerDiff(n, a.ToColMajor(), want); d != 0 {
		t.Errorf("chaos-run factor differs from clean run by %g", d)
	}
	if got := reg.Snapshot().Counters["sched.tasks_retried"]; got == 0 {
		t.Error("chaos run reported 0 retried tasks")
	}
}

// TestLUChaosWithRetryCompletes is the LU half of the chaos acceptance run.
func TestLUChaosWithRetryCompletes(t *testing.T) {
	const n, nb, seed = 512, 64, 43
	rng := rand.New(rand.NewSource(seed))
	aD := matgen.DiagDomSPD[float64](rng, n)
	clean := tile.FromColMajor(n, n, aD, n, nb)
	rc := sched.New(4)
	if _, err := core.LU(rc, clean); err != nil {
		t.Fatal(err)
	}
	rc.Shutdown()

	a := tile.FromColMajor(n, n, aD, n, nb)
	reg := metrics.New()
	r := sched.New(4,
		sched.WithMetrics(reg),
		sched.WithRetry(50, 0),
		sched.WithChaos(2016, 0.05, nil),
	)
	defer r.Shutdown()
	if _, err := core.LU(r, a); err != nil {
		t.Fatalf("chaos run failed: %v", err)
	}
	if d := maxAbsDiff(a.ToColMajor(), clean.ToColMajor()); d != 0 {
		t.Errorf("chaos-run LU factor differs from clean run by %g", d)
	}
	if got := reg.Snapshot().Counters["sched.tasks_retried"]; got == 0 {
		t.Error("chaos run reported 0 retried tasks")
	}
}

// TestCholeskyChaosWithoutRetryFailsGracefully: the same chaos run with
// retries disabled must surface an aggregated error naming the killed
// kernel instead of panicking or hanging.
func TestCholeskyChaosWithoutRetryFailsGracefully(t *testing.T) {
	const n, nb = 256, 64
	rng := rand.New(rand.NewSource(44))
	aD := matgen.DiagDomSPD[float64](rng, n)
	a := tile.FromColMajor(n, n, aD, n, nb)
	r := sched.New(4, sched.WithChaos(2016, 0.05, nil))
	defer r.Shutdown()
	err := core.Cholesky(r, a)
	if err == nil {
		t.Fatal("chaos without retries returned nil")
	}
	var fe *sched.FailuresError
	if !errors.As(err, &fe) {
		t.Fatalf("error %T does not unwrap to *sched.FailuresError: %v", err, err)
	}
	if !errors.Is(err, sched.ErrInjected) {
		t.Errorf("error does not unwrap to ErrInjected: %v", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "potrf") && !strings.Contains(msg, "trsm") &&
		!strings.Contains(msg, "syrk") && !strings.Contains(msg, "gemm") {
		t.Errorf("error %q does not name a kernel", msg)
	}
}

// luSolveResidual factors a copy of aD resiliently and checks it still
// solves A·x = b accurately.
func luSolveResidual(t *testing.T, n, nb int, aD []float64, opt core.FTOptions, opts ...sched.Option) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	a := tile.FromColMajor(n, n, append([]float64(nil), aD...), n, nb)
	xWant := matgen.Dense[float64](rng, n, 1)
	bD := make([]float64, n)
	at := tile.FromColMajor(n, n, aD, n, nb)
	core.MatVec(blas.NoTrans, 1, at, xWant, 0, bD)
	b := tile.FromColMajor(n, 1, bD, n, nb)

	r := sched.New(4, opts...)
	defer r.Shutdown()
	f, err := core.ResilientLU(r, a, opt)
	if err != nil {
		t.Fatalf("resilient LU: %v", err)
	}
	core.ApplyLU(r, f, b)
	core.TrsmUpper(r, a, b)
	r.Wait()
	got := b.ToColMajor()
	var diff float64
	for i := range xWant {
		if d := math.Abs(got[i] - xWant[i]); d > diff {
			diff = d
		}
	}
	return diff
}

func TestResilientLURecoversFromInjection(t *testing.T) {
	const n, nb = 192, 48
	rng := rand.New(rand.NewSource(45))
	aD := matgen.DiagDomSPD[float64](rng, n)
	inj := ft.NewInjector(9)
	var stats ft.Stats
	hook := func(step int, m *tile.Matrix[float64]) {
		// Corrupt finalized factor data right after its checksums were
		// recorded: a sub-diagonal panel tile at step 0 and a U tile of
		// row 1 at step 1.
		switch step {
		case 0:
			inj.AddNoise(m.Tile(2, 0), 7+3*m.TileRows(2), m.TileRows(2), 1e-3)
			stats.Injected.Add(1)
		case 1:
			inj.AddNoise(m.Tile(1, 3), 4+9*m.TileRows(1), m.TileRows(1), 2.0)
			stats.Injected.Add(1)
		}
	}
	diff := luSolveResidual(t, n, nb, aD, core.FTOptions{InjectHook: hook, Stats: &stats},
		sched.WithRetry(3, 0))
	if stats.Detected.Load() < 2 || stats.Corrected.Load() < 2 {
		t.Errorf("detected %d / corrected %d, want >= 2 each",
			stats.Detected.Load(), stats.Corrected.Load())
	}
	if diff > 1e-6 {
		t.Errorf("solution error %g after recovery", diff)
	}
}

func TestResilientLUCleanSolves(t *testing.T) {
	const n, nb = 192, 48
	rng := rand.New(rand.NewSource(46))
	aD := matgen.DiagDomSPD[float64](rng, n)
	var stats ft.Stats
	diff := luSolveResidual(t, n, nb, aD, core.FTOptions{Stats: &stats}, sched.WithRetry(3, 0))
	if diff > 1e-8 {
		t.Errorf("solution error %g on clean resilient LU", diff)
	}
	if stats.Detected.Load() != 0 {
		t.Errorf("clean run detected %d faults", stats.Detected.Load())
	}
}

// TestResilientCholeskyChaosAndInjection exercises everything at once:
// chaos task kills, checksum corruption, retries, and recovery.
func TestResilientCholeskyChaosAndInjection(t *testing.T) {
	const n, nb, seed = 256, 64, 47
	aD, want := cleanCholesky(t, n, nb, seed)
	a := tile.FromColMajor(n, n, aD, n, nb)
	inj := ft.NewInjector(11)
	var stats ft.Stats
	hook := func(step int, m *tile.Matrix[float64]) {
		if step == 1 {
			inj.AddNoise(m.Tile(2, 1), 3+5*m.TileRows(2), m.TileRows(2), 1.0)
			stats.Injected.Add(1)
		}
	}
	r := sched.New(4,
		sched.WithRetry(50, 0),
		sched.WithChaos(77, 0.05, nil),
	)
	defer r.Shutdown()
	err := core.ResilientCholesky(r, a, core.FTOptions{InjectHook: hook, Stats: &stats})
	if err != nil {
		t.Fatalf("combined chaos+injection run failed: %v", err)
	}
	if stats.Detected.Load() == 0 {
		t.Error("injected corruption was not detected")
	}
	tol := ft.DetectTol(normLower(n, aD), n)
	if d := lowerDiff(n, a.ToColMajor(), want); d > tol {
		t.Errorf("recovered factor differs from fault-free by %g (tol %g)", d, tol)
	}
}
