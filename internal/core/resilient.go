package core

import (
	"errors"
	"fmt"
	"math"

	"exadla/internal/blas"
	"exadla/internal/ft"
	"exadla/internal/lapack"
	"exadla/internal/sched"
	"exadla/internal/tile"
)

// This file implements the ABFT-protected tile factorizations: Cholesky and
// LU variants that carry per-tile column checksums alongside the numerical
// tiles, verify them as the factorization proceeds, and recover from silent
// data corruption by correcting the located entry in place and re-running
// the verification through the scheduler's retry path ("at extreme scale,
// faults are the norm" — the runtime treats corruption like any other
// transient task failure).
//
// Protection model, Cholesky (maintained checksums): every strictly-lower
// tile A[i][j] carries a 2×nb checksum pair (plain and weighted column sums,
// see ft.ColSums) initialised before submission and updated through the same
// BLAS operations as the tile itself — a right-side trsm or gemm applies
// identically to the 2-row pair, which is what keeps the sums independent
// witnesses. Diagonal tiles are witnessed by a snapshot taken inside the
// potrf task (ft.TrilColSums) immediately after the panel factorization.
// Verification tasks after each panel step compare tiles against their
// checksums; a located fault is corrected in place and reported as a
// retryable *ft.CorruptionError, so the scheduler re-runs the verification,
// which passes once the correction holds. Unlocatable faults keep failing
// and surface as a permanent task failure through WaitErr.
//
// Protection model, LU (post-hoc records): incremental pivoting reorders
// rows dynamically, so checksums cannot be carried through tstrf/ssssm the
// way they survive Cholesky's updates. Instead a record task snapshots each
// tile's column sums the moment the factorization finishes writing it
// (row-k tiles after step k's update sweep, sub-diagonal tiles after their
// tstrf); verification re-sums the unchanged data, so any later corruption
// of the finalized factor is detected and corrected. Corruption of a tile
// while it is still being updated is outside this model — the weaker
// guarantee is the price of pivoting.

// FTOptions configures the resilient factorizations.
type FTOptions struct {
	// VerifyEvery verifies checksummed tiles after every VerifyEvery-th
	// panel step; 0 means 1 (every step). Sparser verification trades
	// detection latency for overhead: a fault that propagates through
	// unverified updates may become unlocatable and fail the run instead
	// of being corrected.
	VerifyEvery int
	// NoFinalVerify skips the whole-factor verification sweep that
	// otherwise runs after the last step.
	NoFinalVerify bool
	// InjectHook, if non-nil, is called once per panel step between the
	// step's checksum snapshot and its verification, with write access to
	// the step's panel tiles (Cholesky: column k at and below the
	// diagonal; LU: the tiles finalized by step k). Tests and the
	// exabench fault driver use it to corrupt data mid-factorization.
	InjectHook func(step int, a *tile.Matrix[float64])
	// Stats, if non-nil, accumulates detection/correction counts.
	Stats *ft.Stats
	// Erasure arms hard-fault protection: one XOR parity tile per tile row
	// (ft.RowErasure). Tiles are committed to their row's parity group as
	// the factorization finalizes them, and a wholly lost tile — faults
	// across multiple checksum columns, the signature of wholesale loss
	// rather than a bit flip — is rebuilt bit-exactly by XOR subtraction
	// instead of failing the run.
	Erasure bool
	// LoseTiles schedules hard-fault injections (requires Erasure): at the
	// given panel step each listed tile is wiped to zero, modelling the
	// loss of the worker or process that held it. The tile must have been
	// finalized (committed to its parity group) by an earlier point of the
	// factorization.
	LoseTiles []TileLoss
}

// TileLoss names one injected hard fault: tile (I, J) is lost at panel
// step Step. With Silent false the loss is fail-stop — the runtime knows
// which tile died and a reconstruction task rebuilds it immediately,
// before any later reader consumes it. With Silent true nothing is
// scheduled: the loss must be caught by checksum verification (the final
// sweep detects the multi-column fault pattern and reconstructs), which is
// only sound for tiles with no remaining readers before that verification.
type TileLoss struct {
	Step, I, J int
	Silent     bool
}

func (o FTOptions) verifyStep(k int) bool {
	ve := o.VerifyEvery
	if ve < 1 {
		ve = 1
	}
	return k%ve == 0
}

// validateLosses rejects loss schedules the erasure layer cannot honour.
func (o FTOptions) validateLosses(a *tile.Matrix[float64]) error {
	if len(o.LoseTiles) == 0 {
		return nil
	}
	if !o.Erasure {
		return errors.New("core: FTOptions.LoseTiles requires FTOptions.Erasure (nothing could reconstruct the lost tiles)")
	}
	for _, l := range o.LoseTiles {
		if l.I < 0 || l.I >= a.MT || l.J < 0 || l.J >= a.NT {
			return fmt.Errorf("core: TileLoss (%d,%d) outside the %d×%d tile grid", l.I, l.J, a.MT, a.NT)
		}
	}
	return nil
}

// schedWait drains the scheduler and returns its aggregated task failures
// when it supports the error-returning wait (sched.Runtime and
// sched.Recorder both do); a plain Scheduler just waits.
func schedWait(s sched.Scheduler) error {
	if ew, ok := s.(sched.ErrorWaiter); ok {
		return ew.WaitErr()
	}
	s.Wait()
	return nil
}

// finishErr is the common driver epilogue: drain the scheduler, then merge
// the algorithm's own error state with the runtime's aggregated task
// failures. A sole error is returned unwrapped, preserving the historical
// concrete error types (e.g. *lapack.NotPositiveDefiniteError) that callers
// type-assert on.
func finishErr(es *errState, s sched.Scheduler) error {
	werr := schedWait(s)
	err := es.get()
	switch {
	case err == nil:
		return werr
	case werr == nil:
		return err
	}
	return errors.Join(err, werr)
}

// resilientState owns the checksum storage of one resilient factorization.
type resilientState struct {
	a *tile.Matrix[float64]
	// sums[i+j*MT] is the 2×TileCols(j) checksum pair of tile (i, j);
	// entries are allocated only for protected tiles.
	sums [][]float64
	// diag[k] is the post-potrf lower-triangle witness of tile (k, k)
	// (Cholesky only), written inside the potrf task.
	diag [][]float64
	// ers is the per-tile-row parity store, non-nil when FTOptions.Erasure
	// is set.
	ers *ft.RowErasure
	tol float64
	opt FTOptions
}

// sumHandle is the scheduler identity of one tile's checksum pair, so tasks
// that update or read checksums declare them like any other datum.
type sumHandle struct {
	st   *resilientState
	i, j int
}

func (st *resilientState) handle(i, j int) sched.Handle { return sumHandle{st, i, j} }

func (st *resilientState) sum(i, j int) []float64 { return st.sums[i+j*st.a.MT] }

// maxAbsLower returns the max-abs norm over the referenced (lower) region
// of a symmetric tiled matrix.
func maxAbsLower(a *tile.Matrix[float64]) float64 {
	var norm float64
	for j := 0; j < a.NT; j++ {
		for i := j; i < a.MT; i++ {
			t := a.Tile(i, j)
			ld := a.TileRows(i)
			for c := 0; c < a.TileCols(j); c++ {
				lo := 0
				if i == j {
					lo = c
				}
				for r := lo; r < a.TileRows(i); r++ {
					if av := math.Abs(t[r+c*ld]); av > norm {
						norm = av
					}
				}
			}
		}
	}
	return norm
}

func maxAbs(a *tile.Matrix[float64]) float64 {
	var norm float64
	for j := 0; j < a.NT; j++ {
		for i := 0; i < a.MT; i++ {
			for _, v := range a.Tile(i, j) {
				if av := math.Abs(v); av > norm {
					norm = av
				}
			}
		}
	}
	return norm
}

// ResilientCholesky computes the tile Cholesky factorization like Cholesky,
// with ABFT checksum protection per FTOptions. Detected corruption is
// corrected in place and re-verified through the scheduler's retry path, so
// the scheduler should have a retry policy installed (sched.WithRetry);
// without one the first detection fails the factorization even when the
// correction succeeded.
func ResilientCholesky(s sched.Scheduler, a *tile.Matrix[float64], opt FTOptions) error {
	if a.M != a.N {
		panic("core: Cholesky needs a square matrix")
	}
	if err := opt.validateLosses(a); err != nil {
		return err
	}
	st := &resilientState{
		a:    a,
		sums: make([][]float64, a.MT*a.NT),
		diag: make([][]float64, a.NT),
		opt:  opt,
		tol:  ft.DetectTol(maxAbsLower(a), a.N),
	}
	if opt.Erasure {
		st.ers = ft.NewRowErasure(a, opt.Stats)
	}
	// Initial checksums of every strictly-lower tile; they are maintained
	// through each update the tile receives. Diagonal witnesses are filled
	// by the potrf tasks.
	for j := 0; j < a.NT; j++ {
		st.diag[j] = make([]float64, 2*a.TileCols(j))
		for i := j + 1; i < a.MT; i++ {
			sums := make([]float64, 2*a.TileCols(j))
			ft.ColSums(a.TileRows(i), a.TileCols(j), a.Tile(i, j), a.TileRows(i), sums)
			st.sums[i+j*a.MT] = sums
		}
	}
	submitResilientCholesky(s, st)
	return schedWait(s)
}

func submitResilientCholesky(s sched.Scheduler, st *resilientState) {
	a := st.a
	nt := a.NT
	for k := 0; k < nt; k++ {
		k := k
		s.Submit(sched.Task{
			Name:     "potrf",
			Priority: prioPanel(k, nt),
			Writes:   []sched.Handle{a.Handle(k, k)},
			FnErr: timedErr(panelNs, func() error {
				n := a.TileCols(k)
				t := a.Tile(k, k)
				ld := a.TileRows(k)
				if err := lapack.Potrf(blas.Lower, n, t, ld); err != nil {
					perr := err.(*lapack.NotPositiveDefiniteError)
					return sched.Permanent(&lapack.NotPositiveDefiniteError{Index: k*a.NB + perr.Index})
				}
				// Witness the freshly factored diagonal tile before anyone
				// else (including an injection hook) can touch it.
				ft.TrilColSums(n, t, ld, st.diag[k])
				return nil
			}),
		})
		if st.opt.InjectHook != nil {
			writes := []sched.Handle{a.Handle(k, k)}
			for i := k + 1; i < a.MT; i++ {
				writes = append(writes, a.Handle(i, k))
			}
			s.Submit(sched.Task{
				Name:     "inject",
				Priority: prioPanel(k, nt),
				Writes:   writes,
				Fn:       func() { st.opt.InjectHook(k, a) },
			})
		}
		if st.opt.verifyStep(k) {
			s.Submit(sched.Task{
				Name:     "verify",
				Priority: prioPanel(k, nt),
				Writes:   []sched.Handle{a.Handle(k, k)},
				FnErr: func() error {
					return st.verifyTile(k, k)
				},
			})
		}
		// The diagonal tile is final after its verify: commit it to the row
		// parity group so a later loss is reconstructible.
		st.submitCommit(s, k, k, prioPanel(k, nt))
		for i := k + 1; i < a.MT; i++ {
			i := i
			s.Submit(sched.Task{
				Name:     "trsm",
				Priority: prioSolve(k, nt),
				Reads:    []sched.Handle{a.Handle(k, k)},
				Writes:   []sched.Handle{a.Handle(i, k), st.handle(i, k)},
				Fn: timed(solveNs, func() {
					// A[i][k] ← A[i][k]·L[k][k]⁻ᵀ, and the 2×nb checksum
					// pair through the identical right-side solve.
					blas.Trsm(blas.Right, blas.Lower, blas.Trans, blas.NonUnit,
						a.TileRows(i), a.TileCols(k), 1,
						a.Tile(k, k), a.TileRows(k), a.Tile(i, k), a.TileRows(i))
					blas.Trsm(blas.Right, blas.Lower, blas.Trans, blas.NonUnit,
						2, a.TileCols(k), 1,
						a.Tile(k, k), a.TileRows(k), st.sum(i, k), 2)
				}),
			})
			if st.opt.verifyStep(k) {
				s.Submit(sched.Task{
					Name:     "verify",
					Priority: prioSolve(k, nt),
					Reads:    []sched.Handle{st.handle(i, k)},
					Writes:   []sched.Handle{a.Handle(i, k)},
					FnErr: func() error {
						return st.verifyTile(i, k)
					},
				})
			}
			// Post-trsm, tile (i, k) is a final L tile: commit it before the
			// step's gemms read it, so even a loss within this step is
			// recoverable.
			st.submitCommit(s, i, k, prioSolve(k, nt))
		}
		// Hard-fault injections scheduled for this step run after the panel
		// and solves (their targets committed) and before the trailing
		// update reads anything.
		st.submitLosses(s, k, nt)
		for j := k + 1; j < nt; j++ {
			j := j
			s.Submit(sched.Task{
				Name:     "syrk",
				Priority: prioUpdate(j, nt),
				Reads:    []sched.Handle{a.Handle(j, k)},
				Writes:   []sched.Handle{a.Handle(j, j)},
				Fn: timed(updateNs, func() {
					blas.Syrk(blas.Lower, blas.NoTrans, a.TileCols(j), a.TileCols(k),
						-1, a.Tile(j, k), a.TileRows(j), 1, a.Tile(j, j), a.TileRows(j))
				}),
			})
			for i := j + 1; i < a.MT; i++ {
				i := i
				s.Submit(sched.Task{
					Name:     "gemm",
					Priority: prioUpdate(j, nt),
					Reads:    []sched.Handle{a.Handle(i, k), a.Handle(j, k), st.handle(i, k)},
					Writes:   []sched.Handle{a.Handle(i, j), st.handle(i, j)},
					Fn: timed(updateNs, func() {
						// A[i][j] -= A[i][k]·A[j][k]ᵀ; the checksum pair of
						// (i, j) follows via E·(A[i][k]·A[j][k]ᵀ) =
						// (E·A[i][k])·A[j][k]ᵀ = sums[i][k]·A[j][k]ᵀ.
						blas.Gemm(blas.NoTrans, blas.Trans,
							a.TileRows(i), a.TileCols(j), a.TileCols(k),
							-1, a.Tile(i, k), a.TileRows(i),
							a.Tile(j, k), a.TileRows(j),
							1, a.Tile(i, j), a.TileRows(i))
						blas.Gemm(blas.NoTrans, blas.Trans,
							2, a.TileCols(j), a.TileCols(k),
							-1, st.sum(i, k), 2,
							a.Tile(j, k), a.TileRows(j),
							1, st.sum(i, j), 2)
					}),
				})
			}
		}
	}
	if !st.opt.NoFinalVerify {
		writes := make([]sched.Handle, 0, nt*(nt+1)/2)
		for j := 0; j < nt; j++ {
			for i := j; i < a.MT; i++ {
				writes = append(writes, a.Handle(i, j))
			}
		}
		s.Submit(sched.Task{
			Name:   "verify",
			Writes: writes,
			FnErr: func() error {
				return st.sweep()
			},
		})
	}
}

// submitCommit submits the task that folds finalized tile (i, j) into its
// row parity group. Reading the tile places it after the tile's final
// writer (and its verify); writing the row's parity handle serializes all
// parity operations in the row, which is the happens-before edge every
// later reconstruction relies on. No-op without erasure.
func (st *resilientState) submitCommit(s sched.Scheduler, i, j, prio int) {
	if st.ers == nil {
		return
	}
	s.Submit(sched.Task{
		Name:     "commit",
		Priority: prio,
		Reads:    []sched.Handle{st.a.Handle(i, j)},
		Writes:   []sched.Handle{st.ers.RowHandle(i)},
		Fn:       func() { st.ers.Commit(i, j) },
	})
}

// submitLosses submits this step's scheduled hard-fault injections: each
// target tile is wiped (the loss), and — unless the loss is Silent — a
// reconstruction task immediately rebuilds it from the row parity, the
// fail-stop recovery a real runtime performs when it knows which worker
// died. Silent losses are left for checksum verification to catch.
func (st *resilientState) submitLosses(s sched.Scheduler, step, nt int) {
	a := st.a
	for _, l := range st.opt.LoseTiles {
		if l.Step != step {
			continue
		}
		l := l
		s.Submit(sched.Task{
			Name:     "lose",
			Priority: prioUpdate(step, nt),
			Writes:   []sched.Handle{a.Handle(l.I, l.J)},
			Fn: func() {
				t := a.Tile(l.I, l.J)
				for z := range t {
					t[z] = 0
				}
				if st.opt.Stats != nil {
					st.opt.Stats.Injected.Add(1)
				}
			},
		})
		if l.Silent {
			continue
		}
		s.Submit(sched.Task{
			Name:     "reconstruct",
			Priority: prioUpdate(step, nt),
			Writes:   []sched.Handle{a.Handle(l.I, l.J), st.ers.RowHandle(l.I)},
			FnErr: func() error {
				return st.ers.ReconstructTile(l.I, l.J)
			},
		})
	}
}

// tileLost reports whether a fault pattern looks like wholesale tile loss
// rather than an isolated flip: discrepancies across more than one checksum
// column, or an unlocatable fault, which per-entry correction cannot fix.
func tileLost(faults []ft.Fault) bool {
	if len(faults) > 1 {
		return true
	}
	for _, f := range faults {
		if f.Row < 0 {
			return true
		}
	}
	return false
}

// correct repairs located faults of tile (i, j) in place like
// ft.CorrectColSums, additionally amending the row parity when the tile is
// already committed, so later reconstructions in the row stay exact.
func (st *resilientState) correct(i, j int, faults []ft.Fault) int {
	a := st.a
	t := a.Tile(i, j)
	ld := a.TileRows(i)
	c := 0
	for _, f := range faults {
		if f.Row < 0 {
			continue
		}
		oldV := t[f.Row+f.Col*ld]
		newV := oldV - f.Delta
		t[f.Row+f.Col*ld] = newV
		if st.ers != nil {
			st.ers.Amend(i, j, f.Row, f.Col, oldV, newV)
		}
		c++
	}
	return c
}

// verifyTile checks one tile against its checksums. A fault pattern that
// looks like wholesale loss of a parity-committed tile is repaired by
// erasure reconstruction; otherwise located faults are corrected in place.
// Either repair is reported as a retryable corruption error (the retry
// re-runs this verification, which passes once the repair holds).
func (st *resilientState) verifyTile(i, j int) error {
	a := st.a
	var faults []ft.Fault
	if i == j {
		faults = ft.VerifyTrilColSums(a.TileCols(j), a.Tile(j, j), a.TileRows(j), st.diag[j], st.tol)
	} else {
		faults = ft.VerifyColSums(a.TileRows(i), a.TileCols(j), a.Tile(i, j), a.TileRows(i), st.sums[i+j*a.MT], st.tol)
	}
	return st.repair(i, j, faults)
}

// repair routes a non-empty fault list to erasure reconstruction or
// per-entry correction and builds the retryable corruption report.
func (st *resilientState) repair(i, j int, faults []ft.Fault) error {
	if len(faults) == 0 {
		return nil
	}
	if st.ers != nil && tileLost(faults) && st.ers.Committed(i, j) {
		if err := st.ers.ReconstructTile(i, j); err == nil {
			if st.opt.Stats != nil {
				st.opt.Stats.Detected.Add(1)
			}
			return &ft.CorruptionError{TileRow: i, TileCol: j, Faults: faults, Reconstructed: true}
		}
	}
	corrected := st.correct(i, j, faults)
	st.opt.Stats.Note(faults, corrected)
	return &ft.CorruptionError{TileRow: i, TileCol: j, Faults: faults, Corrected: corrected}
}

// sweep verifies every protected tile of the finished factor, aggregating
// faults across tiles into one retryable corruption error.
func (st *resilientState) sweep() error {
	a := st.a
	var all []ft.Fault
	corrected, reconstructed := 0, false
	for j := 0; j < a.NT; j++ {
		for i := j; i < a.MT; i++ {
			err := st.verifyTile(i, j)
			if err == nil {
				continue
			}
			ce := err.(*ft.CorruptionError)
			all = append(all, ce.Faults...)
			corrected += ce.Corrected
			reconstructed = reconstructed || ce.Reconstructed
		}
	}
	if len(all) == 0 {
		return nil
	}
	return &ft.CorruptionError{TileRow: -1, TileCol: -1, Faults: all, Corrected: corrected, Reconstructed: reconstructed}
}

// ResilientLU computes the tile LU factorization like LU, with post-hoc
// checksum records per FTOptions (see the protection-model comment above).
// Like ResilientCholesky it wants a scheduler retry policy installed.
func ResilientLU(s sched.Scheduler, a *tile.Matrix[float64], opt FTOptions) (*LUFactors[float64], error) {
	if err := opt.validateLosses(a); err != nil {
		return nil, err
	}
	f := newLUFactors(a)
	es := &errState{}
	// The tolerance reads the input matrix, so it must be computed before
	// the factorization DAG is submitted — tasks start mutating tiles the
	// moment Submit links them.
	st := &resilientState{
		a:    a,
		sums: make([][]float64, a.MT*a.NT),
		opt:  opt,
		tol:  ft.DetectTol(maxAbs(a), max(a.M, a.N)),
	}
	if opt.Erasure {
		st.ers = ft.NewRowErasure(a, opt.Stats)
	}
	submitLU(s, f, es, false)
	submitLURecords(s, st)
	return f, finishErr(es, s)
}

// submitLURecords submits, per factorization step, the record tasks that
// snapshot each tile's checksums as it finalizes, the optional injection
// hook, and the verification tasks. Dependences are derived per handle, so
// although these tasks are submitted after the whole factorization DAG,
// each record runs as soon as the factorization finishes writing its tile —
// mid-factorization in dataflow time.
func submitLURecords(s sched.Scheduler, st *resilientState) {
	a := st.a
	kt := min(a.MT, a.NT)
	stepTiles := func(k int) [][2]int {
		var tiles [][2]int
		for j := k; j < a.NT; j++ {
			tiles = append(tiles, [2]int{k, j})
		}
		for i := k + 1; i < a.MT; i++ {
			tiles = append(tiles, [2]int{i, k})
		}
		return tiles
	}
	for k := 0; k < kt; k++ {
		k := k
		tiles := stepTiles(k)
		for _, t := range tiles {
			i, j := t[0], t[1]
			sums := make([]float64, 2*a.TileCols(j))
			st.sums[i+j*a.MT] = sums
			s.Submit(sched.Task{
				Name:     "record",
				Priority: prioUpdate(k, kt),
				Writes:   []sched.Handle{a.Handle(i, j), st.handle(i, j)},
				Fn: func() {
					ft.ColSums(a.TileRows(i), a.TileCols(j), a.Tile(i, j), a.TileRows(i), sums)
				},
			})
		}
		if st.opt.InjectHook != nil {
			writes := make([]sched.Handle, 0, len(tiles))
			for _, t := range tiles {
				writes = append(writes, a.Handle(t[0], t[1]))
			}
			s.Submit(sched.Task{
				Name:     "inject",
				Priority: prioUpdate(k, kt),
				Writes:   writes,
				Fn:       func() { st.opt.InjectHook(k, a) },
			})
		}
		if st.opt.verifyStep(k) {
			for _, t := range tiles {
				i, j := t[0], t[1]
				s.Submit(sched.Task{
					Name:     "verify",
					Priority: prioUpdate(k, kt),
					Reads:    []sched.Handle{st.handle(i, j)},
					Writes:   []sched.Handle{a.Handle(i, j)},
					FnErr: func() error {
						return st.verifyLUTile(i, j)
					},
				})
			}
		}
		// Recorded tiles are final: commit them to their row parity groups,
		// then run this step's scheduled hard-fault injections.
		for _, t := range tiles {
			st.submitCommit(s, t[0], t[1], prioUpdate(k, kt))
		}
		st.submitLosses(s, k, kt)
	}
	if !st.opt.NoFinalVerify {
		writes := make([]sched.Handle, 0, a.MT*a.NT)
		for j := 0; j < a.NT; j++ {
			for i := 0; i < a.MT; i++ {
				if st.sums[i+j*a.MT] != nil {
					writes = append(writes, a.Handle(i, j))
				}
			}
		}
		s.Submit(sched.Task{
			Name:   "verify",
			Writes: writes,
			FnErr: func() error {
				return st.luSweep()
			},
		})
	}
}

// verifyLUTile is verifyTile for post-hoc records: all LU tiles carry full
// (not lower-triangle) checksums, including the diagonal.
func (st *resilientState) verifyLUTile(i, j int) error {
	a := st.a
	faults := ft.VerifyColSums(a.TileRows(i), a.TileCols(j), a.Tile(i, j), a.TileRows(i), st.sums[i+j*a.MT], st.tol)
	return st.repair(i, j, faults)
}

func (st *resilientState) luSweep() error {
	a := st.a
	var all []ft.Fault
	corrected, reconstructed := 0, false
	for j := 0; j < a.NT; j++ {
		for i := 0; i < a.MT; i++ {
			if st.sums[i+j*a.MT] == nil {
				continue
			}
			err := st.verifyLUTile(i, j)
			if err == nil {
				continue
			}
			ce := err.(*ft.CorruptionError)
			all = append(all, ce.Faults...)
			corrected += ce.Corrected
			reconstructed = reconstructed || ce.Reconstructed
		}
	}
	if len(all) == 0 {
		return nil
	}
	return &ft.CorruptionError{TileRow: -1, TileCol: -1, Faults: all, Corrected: corrected, Reconstructed: reconstructed}
}
