package core

import (
	"errors"
	"fmt"

	"exadla/internal/ckpt"
	"exadla/internal/sched"
	"exadla/internal/tile"
)

// This file wires checkpoint/restart into the tile factorizations. The
// snapshot discipline exploits the dataflow scheduler itself: a "ckpt"
// task submitted between step k's tasks and step k+1's declares a Read
// on every tile, so RAW dependences place it after everything steps ≤ k
// wrote and WAR dependences stall every step-(k+1) writer until the
// snapshot is taken. The captured state is therefore the exact
// deterministic post-step-k frontier — no quiescing, no global barrier
// in the programming model, just dependences — and a resumed run replays
// the identical kernels on identical bits, finishing with a factor
// bitwise equal to an uninterrupted run.

// ErrAborted reports a run stopped by CkptOptions.AbortAtStep — the
// deterministic crash used by the restart tests and the exabench fault
// driver.
var ErrAborted = errors.New("core: factorization aborted at scheduled step")

// CkptOptions configures checkpointing of a factorization.
type CkptOptions struct {
	// Dir is the checkpoint directory (created if missing).
	Dir string
	// Every checkpoints after every Every-th panel step; 0 means 1. The
	// frontier after the last step is the finished factor, so no
	// checkpoint is written there.
	Every int
	// AbortAtStep, if positive, deterministically fails the run right
	// after panel step AbortAtStep's checkpoint is written (one is forced
	// at that step regardless of Every): every later task is poisoned and
	// skipped, and the factorization returns an error wrapping
	// ErrAborted. It models a hard crash at a known point, so restart
	// tests and benchmarks are reproducible.
	AbortAtStep int
}

func (o CkptOptions) every() int {
	if o.Every < 1 {
		return 1
	}
	return o.Every
}

// CheckpointedCholesky is Cholesky with a checkpoint written to opt.Dir
// at the configured step cadence. A checkpoint write failure fails the
// factorization (a checkpoint that silently does not exist is worse than
// a loud abort).
func CheckpointedCholesky(s sched.Scheduler, a *tile.Matrix[float64], opt CkptOptions) error {
	es := &errState{}
	submitCholeskyRange(s, a, es, false, 0, ckptHook(s, a, nil, ckpt.OpCholesky, a.NT, opt))
	return finishErr(es, s)
}

// ResumeCholesky restarts a Cholesky factorization from a checkpoint,
// continuing to write checkpoints per opt. It returns the rebuilt tile
// matrix holding the factor on success.
func ResumeCholesky(s sched.Scheduler, c *ckpt.Checkpoint, opt CkptOptions) (*tile.Matrix[float64], error) {
	if c.Op != ckpt.OpCholesky {
		return nil, fmt.Errorf("core: checkpoint holds a %v run, not cholesky", c.Op)
	}
	if c.M != c.N {
		return nil, fmt.Errorf("core: cholesky checkpoint with non-square %d×%d matrix", c.M, c.N)
	}
	a := tile.FromColMajor(c.M, c.N, c.Data, c.M, c.NB)
	if c.Step > a.NT {
		return nil, fmt.Errorf("core: checkpoint step %d beyond %d panel steps", c.Step, a.NT)
	}
	es := &errState{}
	submitCholeskyRange(s, a, es, false, c.Step, ckptHook(s, a, nil, ckpt.OpCholesky, a.NT, opt))
	return a, finishErr(es, s)
}

// CheckpointedLU is LU with checkpoints: the snapshot additionally
// carries the pivot vectors and elimination stacks of the completed
// steps, which the resumed factors need both to continue and to solve.
func CheckpointedLU(s sched.Scheduler, a *tile.Matrix[float64], opt CkptOptions) (*LUFactors[float64], error) {
	f := newLUFactors(a)
	es := &errState{}
	kt := min(a.MT, a.NT)
	submitLURange(s, f, es, false, 0, ckptHook(s, a, f, ckpt.OpLU, kt, opt))
	return f, finishErr(es, s)
}

// ResumeLU restarts an LU factorization from a checkpoint.
func ResumeLU(s sched.Scheduler, c *ckpt.Checkpoint, opt CkptOptions) (*LUFactors[float64], error) {
	if c.Op != ckpt.OpLU {
		return nil, fmt.Errorf("core: checkpoint holds a %v run, not lu", c.Op)
	}
	a := tile.FromColMajor(c.M, c.N, c.Data, c.M, c.NB)
	kt := min(a.MT, a.NT)
	if c.Step > kt {
		return nil, fmt.Errorf("core: checkpoint step %d beyond %d panel steps", c.Step, kt)
	}
	f := newLUFactors(a)
	if len(c.DiagPiv) > len(f.DiagPiv) || len(c.StackL) > len(f.StackL) || len(c.StackPiv) > len(f.StackPiv) {
		return nil, fmt.Errorf("core: checkpoint pivot state does not fit a %d×%d tile grid", a.MT, a.NT)
	}
	copy(f.DiagPiv, c.DiagPiv)
	copy(f.StackL, c.StackL)
	copy(f.StackPiv, c.StackPiv)
	es := &errState{}
	submitLURange(s, f, es, false, c.Step, ckptHook(s, a, f, ckpt.OpLU, kt, opt))
	return f, finishErr(es, s)
}

// ckptHook returns the afterStep callback that injects the snapshot task
// (and, at AbortAtStep, the abort task) into the DAG. f is non-nil for LU.
func ckptHook(s sched.Scheduler, a *tile.Matrix[float64], f *LUFactors[float64], op ckpt.Op, kt int, opt CkptOptions) func(k int) {
	allTiles := func() []sched.Handle {
		hs := make([]sched.Handle, 0, a.MT*a.NT)
		for j := 0; j < a.NT; j++ {
			for i := 0; i < a.MT; i++ {
				hs = append(hs, a.Handle(i, j))
			}
		}
		return hs
	}
	return func(k int) {
		abortHere := opt.AbortAtStep > 0 && k == opt.AbortAtStep
		if !abortHere && ((k+1)%opt.every() != 0 || k == kt-1) {
			return
		}
		s.Submit(sched.Task{
			Name:  "ckpt",
			Reads: allTiles(),
			FnErr: func() error {
				c := &ckpt.Checkpoint{
					Op: op, Step: k + 1,
					M: a.M, N: a.N, NB: a.NB,
					Data: a.ToColMajor(),
				}
				if f != nil {
					// Reference the completed steps' pivot state directly:
					// each entry is written once (by a task that
					// happens-before this snapshot via its tile writes) and
					// never mutated.
					c.DiagPiv = f.DiagPiv[:min(k+1, len(f.DiagPiv))]
					c.StackL = f.StackL
					c.StackPiv = f.StackPiv
				}
				if _, err := ckpt.Save(opt.Dir, c); err != nil {
					return sched.Permanent(fmt.Errorf("core: checkpoint at step %d: %w", k+1, err))
				}
				return nil
			},
		})
		if abortHere {
			s.Submit(sched.Task{
				Name:   "abort",
				Writes: allTiles(),
				FnErr: func() error {
					return sched.Permanent(fmt.Errorf("%w %d", ErrAborted, k))
				},
			})
		}
	}
}
