package core_test

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"exadla/internal/blas"
	"exadla/internal/core"
	"exadla/internal/lapack"
	"exadla/internal/matgen"
	"exadla/internal/sched"
	"exadla/internal/tile"
)

// This file holds the PR's machine-checked performance claims: the tile
// factorizations are deterministic regardless of scheduling (the DAG fixes
// the arithmetic order, so same seed + same input ⇒ bitwise-identical
// factors at any worker count), the tiled path at one worker keeps up with
// the serial blocked kernel, and adding workers actually helps when the
// host has them.

// tileCholesky factors a DiagDomSPD matrix from seed on a fresh runtime
// and returns the factored tiles flattened tile-by-tile.
func tileCholesky(t *testing.T, seed int64, n, nb, workers int) []float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	aD := matgen.DiagDomSPD[float64](rng, n)
	a := tile.FromColMajor(n, n, aD, n, nb)
	r := sched.New(workers)
	defer r.Shutdown()
	if err := core.Cholesky(r, a); err != nil {
		t.Fatalf("cholesky: %v", err)
	}
	return flattenTiles(a)
}

// tileLU factors a dense matrix from seed and returns the factored tiles
// plus pivot vectors flattened.
func tileLU(t *testing.T, seed int64, n, nb, workers int) ([]float64, []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	aD := matgen.Dense[float64](rng, n, n)
	for i := 0; i < n; i++ {
		aD[i+i*n] += float64(n) // diagonal dominance keeps pivots stable
	}
	a := tile.FromColMajor(n, n, aD, n, nb)
	r := sched.New(workers)
	defer r.Shutdown()
	f, err := core.LU(r, a)
	if err != nil {
		t.Fatalf("lu: %v", err)
	}
	var pivs []int
	for _, p := range f.DiagPiv {
		pivs = append(pivs, p...)
	}
	return flattenTiles(a), pivs
}

func flattenTiles(a *tile.Matrix[float64]) []float64 {
	var out []float64
	for j := 0; j < a.NT; j++ {
		for i := 0; i < a.MT; i++ {
			out = append(out, a.Tile(i, j)...)
		}
	}
	return out
}

// TestCholeskyDeterministicAcrossRuns: the dependence DAG serializes every
// read-modify-write of each tile, so the floating-point evaluation order —
// and therefore the factor, bit for bit — cannot depend on how the
// scheduler interleaves ready tasks. Any divergence between repeated runs
// (or between worker counts) means a missing dependence edge in the
// runtime, which is exactly what this regression test guards after
// scheduler changes.
func TestCholeskyDeterministicAcrossRuns(t *testing.T) {
	const n, nb = 192, 32
	ref := tileCholesky(t, 42, n, nb, 1)
	for _, workers := range []int{1, 2, 4} {
		for rep := 0; rep < 2; rep++ {
			got := tileCholesky(t, 42, n, nb, workers)
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("workers=%d rep=%d: factor differs at flat index %d: %x vs %x",
						workers, rep, i, got[i], ref[i])
				}
			}
		}
	}
}

// TestLUDeterministicAcrossRuns is the LU analogue, additionally pinning
// the pivot choices.
func TestLUDeterministicAcrossRuns(t *testing.T) {
	const n, nb = 160, 32
	refA, refP := tileLU(t, 43, n, nb, 1)
	for _, workers := range []int{1, 2, 4} {
		for rep := 0; rep < 2; rep++ {
			gotA, gotP := tileLU(t, 43, n, nb, workers)
			for i := range refP {
				if gotP[i] != refP[i] {
					t.Fatalf("workers=%d rep=%d: pivot differs at %d: %d vs %d",
						workers, rep, i, gotP[i], refP[i])
				}
			}
			for i := range refA {
				if gotA[i] != refA[i] {
					t.Fatalf("workers=%d rep=%d: factor differs at flat index %d: %x vs %x",
						workers, rep, i, gotA[i], refA[i])
				}
			}
		}
	}
}

// bestOf times fn reps times and returns the fastest run — the standard
// guard against scheduler noise in acceptance thresholds.
func bestOf(reps int, fn func()) time.Duration {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// TestTiledCholeskyKeepsUpWithSerial is the "parallel beats serial" gate at
// its weakest point: with ONE worker, the tiled dataflow factorization must
// stay within 5% of the serial blocked Potrf on the same matrix — i.e. the
// tile kernels and dispatch overhead cost at most 5% — at n ≥ 512 where
// the flops dominate. If this fails, the scheduler hot path or the tile
// kernel routing regressed.
func TestTiledCholeskyKeepsUpWithSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("timing acceptance test skipped in -short")
	}
	const n, nb = 512, 64
	rng := rand.New(rand.NewSource(7))
	aD := matgen.DiagDomSPD[float64](rng, n)

	serial := bestOf(3, func() {
		work := append([]float64(nil), aD...)
		if err := lapack.Potrf(blas.Lower, n, work, n); err != nil {
			t.Fatalf("serial potrf: %v", err)
		}
	})
	tiled := bestOf(3, func() {
		a := tile.FromColMajor(n, n, aD, n, nb)
		r := sched.New(1)
		defer r.Shutdown()
		if err := core.Cholesky(r, a); err != nil {
			t.Fatalf("tiled cholesky: %v", err)
		}
	})
	// The tiled timing above includes tiling the matrix and starting a
	// runtime, so the 5% kernel budget gets a small fixed grace on top.
	limit := serial + serial/20 + 10*time.Millisecond
	if tiled > limit {
		t.Errorf("tiled cholesky (1 worker) took %v, serial potrf %v: exceeds serial+5%%+10ms = %v",
			tiled, serial, limit)
	}
}

// TestCholeskyStrongScalingAcceptance requires real parallel speedup on
// hosts that can show it: with workers = min(4, NumCPU) ≥ 4, the tiled
// Cholesky at n ≥ 1024 must run at least 1.5× faster than the same
// factorization at workers = 1. Hosts with fewer than 4 CPUs skip — the
// virtual-worker scaling sweep in BENCH_scale.json carries the scaling
// story there.
func TestCholeskyStrongScalingAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("timing acceptance test skipped in -short")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("NumCPU=%d < 4: strong-scaling acceptance needs real cores", runtime.NumCPU())
	}
	const n, nb = 1024, 96
	rng := rand.New(rand.NewSource(9))
	aD := matgen.DiagDomSPD[float64](rng, n)

	run := func(workers int) time.Duration {
		return bestOf(2, func() {
			a := tile.FromColMajor(n, n, aD, n, nb)
			r := sched.New(workers)
			defer r.Shutdown()
			if err := core.Cholesky(r, a); err != nil {
				t.Fatalf("cholesky (workers=%d): %v", workers, err)
			}
		})
	}
	t1 := run(1)
	tp := run(4)
	speedup := float64(t1) / float64(tp)
	t.Logf("n=%d nb=%d: workers=1 %v, workers=4 %v, speedup %.2fx", n, nb, t1, tp, speedup)
	if speedup < 1.5 {
		t.Errorf("4-worker speedup %.2fx < 1.5x (t1=%v t4=%v)", speedup, t1, tp)
	}
}
