package core_test

import (
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"exadla/internal/blas"
	"exadla/internal/ckpt"
	"exadla/internal/core"
	"exadla/internal/matgen"
	"exadla/internal/sched"
	"exadla/internal/tile"
)

// TestCheckpointedCholeskyRestartBitwise: a run aborted mid-factorization
// (deterministic crash after step 1's checkpoint) resumes from the latest
// checkpoint and finishes with a factor bitwise identical to an
// uninterrupted run.
func TestCheckpointedCholeskyRestartBitwise(t *testing.T) {
	const n, nb, seed = 192, 48, 60
	aD, want := cleanCholesky(t, n, nb, seed)
	dir := t.TempDir()
	opt := core.CkptOptions{Dir: dir, Every: 1}

	a := tile.FromColMajor(n, n, append([]float64(nil), aD...), n, nb)
	r := sched.New(4)
	abortOpt := opt
	abortOpt.AbortAtStep = 1
	err := core.CheckpointedCholesky(r, a, abortOpt)
	r.Shutdown()
	if !errors.Is(err, core.ErrAborted) {
		t.Fatalf("aborted run returned %v, want ErrAborted", err)
	}

	c, path, err := ckpt.Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c.Step != 2 {
		t.Fatalf("latest checkpoint %s at step %d, want 2", path, c.Step)
	}

	r2 := sched.New(4)
	defer r2.Shutdown()
	a2, err := core.ResumeCholesky(r2, c, opt)
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	if d := lowerDiff(n, a2.ToColMajor(), want); d != 0 {
		t.Errorf("resumed factor differs from uninterrupted run by %g", d)
	}
	// The resumed run kept checkpointing past the restart point.
	c2, _, err := ckpt.Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Step <= c.Step {
		t.Errorf("resumed run wrote no new checkpoint (latest still step %d)", c2.Step)
	}
}

// TestCheckpointedCholeskySparseCadence: with Every larger than the abort
// step, the only checkpoint is the one forced at AbortAtStep, and the
// resume is still bitwise exact.
func TestCheckpointedCholeskySparseCadence(t *testing.T) {
	const n, nb, seed = 192, 48, 60
	aD, want := cleanCholesky(t, n, nb, seed)
	dir := t.TempDir()

	a := tile.FromColMajor(n, n, append([]float64(nil), aD...), n, nb)
	r := sched.New(4)
	err := core.CheckpointedCholesky(r, a, core.CkptOptions{Dir: dir, Every: 10, AbortAtStep: 2})
	r.Shutdown()
	if !errors.Is(err, core.ErrAborted) {
		t.Fatalf("aborted run returned %v, want ErrAborted", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("Every=10 wrote %d checkpoints, want only the forced one", len(ents))
	}
	c, _, err := ckpt.Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c.Step != 3 {
		t.Fatalf("forced checkpoint at step %d, want 3", c.Step)
	}
	r2 := sched.New(4)
	defer r2.Shutdown()
	a2, err := core.ResumeCholesky(r2, c, core.CkptOptions{Dir: dir, Every: 10})
	if err != nil {
		t.Fatal(err)
	}
	if d := lowerDiff(n, a2.ToColMajor(), want); d != 0 {
		t.Errorf("resumed factor differs from uninterrupted run by %g", d)
	}
}

// TestCheckpointedCholeskyCleanRun: an uninterrupted checkpointed run
// produces the plain factor bitwise and leaves resumable checkpoints
// behind.
func TestCheckpointedCholeskyCleanRun(t *testing.T) {
	const n, nb, seed = 192, 48, 60
	aD, want := cleanCholesky(t, n, nb, seed)
	dir := t.TempDir()
	a := tile.FromColMajor(n, n, append([]float64(nil), aD...), n, nb)
	r := sched.New(4)
	defer r.Shutdown()
	if err := core.CheckpointedCholesky(r, a, core.CkptOptions{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	if d := lowerDiff(n, a.ToColMajor(), want); d != 0 {
		t.Errorf("checkpointed factor differs from plain by %g", d)
	}
	// Delete the trailing checkpoint; resuming from the one before still
	// reproduces the factor — the "rewind further" recovery path.
	c, path, err := ckpt.Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	c2, _, err := ckpt.Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Step >= c.Step {
		t.Fatalf("after deleting step-%d checkpoint, Latest is step %d", c.Step, c2.Step)
	}
	r2 := sched.New(4)
	defer r2.Shutdown()
	a2, err := core.ResumeCholesky(r2, c2, core.CkptOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if d := lowerDiff(n, a2.ToColMajor(), want); d != 0 {
		t.Errorf("factor resumed from step %d differs by %g", c2.Step, d)
	}
}

// TestCheckpointedLURestartBitwise: LU restart reproduces the packed
// factor bitwise, and the restored pivot/stack state actually solves —
// the part of the snapshot a matrix-only checkpoint would lose.
func TestCheckpointedLURestartBitwise(t *testing.T) {
	const n, nb, seed = 192, 48, 61
	aD, want := cleanLU(t, n, nb, seed)
	dir := t.TempDir()
	opt := core.CkptOptions{Dir: dir, Every: 1}

	a := tile.FromColMajor(n, n, append([]float64(nil), aD...), n, nb)
	r := sched.New(4)
	abortOpt := opt
	abortOpt.AbortAtStep = 1
	_, err := core.CheckpointedLU(r, a, abortOpt)
	r.Shutdown()
	if !errors.Is(err, core.ErrAborted) {
		t.Fatalf("aborted run returned %v, want ErrAborted", err)
	}

	c, _, err := ckpt.Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c.Step != 2 {
		t.Fatalf("latest checkpoint at step %d, want 2", c.Step)
	}

	r2 := sched.New(4)
	defer r2.Shutdown()
	f, err := core.ResumeLU(r2, c, opt)
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	if d := maxAbsDiff(f.A.ToColMajor(), want); d != 0 {
		t.Errorf("resumed LU factor differs from uninterrupted run by %g", d)
	}

	// Solve A·x = b with the resumed factors: ApplyLU needs the restored
	// pivot vectors and elimination stacks of the pre-abort steps.
	rng := rand.New(rand.NewSource(62))
	xWant := matgen.Dense[float64](rng, n, 1)
	bD := make([]float64, n)
	at := tile.FromColMajor(n, n, append([]float64(nil), aD...), n, nb)
	core.MatVec(blas.NoTrans, 1, at, xWant, 0, bD)
	b := tile.FromColMajor(n, 1, bD, n, nb)
	core.ApplyLU(r2, f, b)
	core.TrsmUpper(r2, f.A, b)
	r2.Wait()
	got := b.ToColMajor()
	for i := range xWant {
		if d := math.Abs(got[i] - xWant[i]); d > 1e-8 {
			t.Fatalf("solution error %g at %d using resumed factors", d, i)
		}
	}
}

// TestCheckpointWriteFailureFailsRun: an unwritable checkpoint directory
// fails the factorization instead of silently continuing unprotected.
func TestCheckpointWriteFailureFailsRun(t *testing.T) {
	const n, nb = 96, 48
	rng := rand.New(rand.NewSource(63))
	aD := matgen.DiagDomSPD[float64](rng, n)
	a := tile.FromColMajor(n, n, aD, n, nb)
	// A plain file where the checkpoint directory should be.
	parent := t.TempDir()
	dir := filepath.Join(parent, "ckpts")
	if err := os.WriteFile(dir, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := sched.New(4)
	defer r.Shutdown()
	err := core.CheckpointedCholesky(r, a, core.CkptOptions{Dir: dir})
	if err == nil {
		t.Fatal("run with unwritable checkpoint dir succeeded")
	}
	if errors.Is(err, core.ErrAborted) {
		t.Fatalf("write failure misreported as abort: %v", err)
	}
}

// TestResumeRejectsMismatchedOp: resuming the wrong factorization from a
// checkpoint is an error, not silent corruption.
func TestResumeRejectsMismatchedOp(t *testing.T) {
	c := &ckpt.Checkpoint{Op: ckpt.OpLU, Step: 1, M: 4, N: 4, NB: 2, Data: make([]float64, 16)}
	r := sched.New(1)
	defer r.Shutdown()
	if _, err := core.ResumeCholesky(r, c, core.CkptOptions{Dir: t.TempDir()}); err == nil {
		t.Error("ResumeCholesky accepted an LU checkpoint")
	}
	c.Op = ckpt.OpCholesky
	if _, err := core.ResumeLU(r, c, core.CkptOptions{Dir: t.TempDir()}); err == nil {
		t.Error("ResumeLU accepted a Cholesky checkpoint")
	}
	c.Op = ckpt.OpLU
	c.Step = 99
	if _, err := core.ResumeLU(r, c, core.CkptOptions{Dir: t.TempDir()}); err == nil {
		t.Error("ResumeLU accepted an out-of-range step")
	}
}
