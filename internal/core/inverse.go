package core

import (
	"exadla/internal/blas"
	"exadla/internal/lapack"
	"exadla/internal/sched"
	"exadla/internal/tile"
)

// TrtriLower submits tile tasks inverting the lower-triangular tile matrix
// in place (the tile analogue of TRTRI). Processing runs over tile columns
// from last to first; within a column the row tiles are transformed in
// descending order so every task reads only not-yet-transformed tiles — the
// scheduler's WAR dependences make the in-place order safe under any
// parallel execution.
func TrtriLower[F blas.Float](s sched.Scheduler, a *tile.Matrix[F], es *errState) {
	nt := a.NT
	for k := nt - 1; k >= 0; k-- {
		k := k
		// Column k below the diagonal: A[i][k] ← Σ_{l=k+1..i} L⁻¹[i][l]·A[l][k]
		// using the already-inverted trailing blocks, then ·(−L[k][k]⁻¹).
		for i := nt - 1; i > k; i-- {
			i := i
			reads := []sched.Handle{a.Handle(i, i)}
			for l := k + 1; l < i; l++ {
				reads = append(reads, a.Handle(i, l), a.Handle(l, k))
			}
			s.Submit(sched.Task{
				Name:     "trmm",
				Priority: prioUpdate(nt-1-k, nt),
				Reads:    reads,
				Writes:   []sched.Handle{a.Handle(i, k)},
				Fn: func() {
					if es.failed() {
						return
					}
					// Diagonal term (in place), then the strictly-lower terms
					// reading original tiles of column k.
					blas.Trmm(blas.Left, blas.Lower, blas.NoTrans, blas.NonUnit,
						a.TileRows(i), a.TileCols(k), 1,
						a.Tile(i, i), a.TileRows(i), a.Tile(i, k), a.TileRows(i))
					for l := k + 1; l < i; l++ {
						blas.Gemm(blas.NoTrans, blas.NoTrans,
							a.TileRows(i), a.TileCols(k), a.TileCols(l),
							1, a.Tile(i, l), a.TileRows(i),
							a.Tile(l, k), a.TileRows(l),
							1, a.Tile(i, k), a.TileRows(i))
					}
				},
			})
			s.Submit(sched.Task{
				Name:     "trsm",
				Priority: prioSolve(nt-1-k, nt),
				Reads:    []sched.Handle{a.Handle(k, k)},
				Writes:   []sched.Handle{a.Handle(i, k)},
				Fn: func() {
					if es.failed() {
						return
					}
					blas.Trsm(blas.Right, blas.Lower, blas.NoTrans, blas.NonUnit,
						a.TileRows(i), a.TileCols(k), -1,
						a.Tile(k, k), a.TileRows(k), a.Tile(i, k), a.TileRows(i))
				},
			})
		}
		s.Submit(sched.Task{
			Name:     "trtri",
			Priority: prioPanel(nt-1-k, nt),
			Writes:   []sched.Handle{a.Handle(k, k)},
			Fn: func() {
				if es.failed() {
					return
				}
				if err := lapack.Trtri(blas.Lower, blas.NonUnit, a.TileCols(k), a.Tile(k, k), a.TileRows(k)); err != nil {
					serr := err.(*lapack.SingularError)
					es.set(&lapack.SingularError{Index: k*a.NB + serr.Index})
				}
			},
		})
	}
}

// LauumLower submits tile tasks computing Wᵀ·W for a lower-triangular tile
// matrix W in place (the tile analogue of LAUUM): on return the lower tiles
// hold the lower triangle of the symmetric product. Row blocks are consumed
// in ascending order, reading only trailing tiles that have not yet been
// transformed.
func LauumLower[F blas.Float](s sched.Scheduler, a *tile.Matrix[F]) {
	nt := a.NT
	for i := 0; i < nt; i++ {
		i := i
		for j := 0; j < i; j++ {
			j := j
			reads := []sched.Handle{a.Handle(i, i)}
			for l := i + 1; l < nt; l++ {
				reads = append(reads, a.Handle(l, i), a.Handle(l, j))
			}
			s.Submit(sched.Task{
				Name:     "trmm",
				Priority: prioUpdate(i, nt),
				Reads:    reads,
				Writes:   []sched.Handle{a.Handle(i, j)},
				Fn: func() {
					// A[i][j] ← W[i][i]ᵀ·A[i][j] + Σ_{l>i} W[l][i]ᵀ·W[l][j].
					blas.Trmm(blas.Left, blas.Lower, blas.Trans, blas.NonUnit,
						a.TileRows(i), a.TileCols(j), 1,
						a.Tile(i, i), a.TileRows(i), a.Tile(i, j), a.TileRows(i))
					for l := i + 1; l < nt; l++ {
						blas.Gemm(blas.Trans, blas.NoTrans,
							a.TileCols(i), a.TileCols(j), a.TileRows(l),
							1, a.Tile(l, i), a.TileRows(l),
							a.Tile(l, j), a.TileRows(l),
							1, a.Tile(i, j), a.TileRows(i))
					}
				},
			})
		}
		reads := make([]sched.Handle, 0, nt-i)
		for l := i + 1; l < nt; l++ {
			reads = append(reads, a.Handle(l, i))
		}
		s.Submit(sched.Task{
			Name:     "lauum",
			Priority: prioPanel(i, nt),
			Reads:    reads,
			Writes:   []sched.Handle{a.Handle(i, i)},
			Fn: func() {
				lapack.Lauu2(blas.Lower, a.TileCols(i), a.Tile(i, i), a.TileRows(i))
				for l := i + 1; l < nt; l++ {
					blas.Syrk(blas.Lower, blas.Trans, a.TileCols(i), a.TileRows(l),
						1, a.Tile(l, i), a.TileRows(l), 1, a.Tile(i, i), a.TileRows(i))
				}
			},
		})
	}
}

// Potri computes the inverse of an SPD tiled matrix in place from scratch:
// tile Cholesky, tile triangular inverse, and the Wᵀ·W product, all in one
// dataflow graph. On return the lower tiles hold the lower triangle of A⁻¹.
func Potri[F blas.Float](s sched.Scheduler, a *tile.Matrix[F]) error {
	if a.M != a.N {
		panic("core: Potri needs a square matrix")
	}
	es := &errState{}
	submitCholesky(s, a, es, false)
	TrtriLower(s, a, es)
	LauumLower(s, a)
	return finishErr(es, s)
}

// TrtriLowerForTest runs TrtriLower with a private error state, for tests.
func TrtriLowerForTest[F blas.Float](s sched.Scheduler, a *tile.Matrix[F]) {
	TrtriLower(s, a, &errState{})
}
