package core_test

import (
	"math"
	"math/rand"
	"testing"

	"exadla/internal/blas"
	"exadla/internal/core"
	"exadla/internal/matgen"
	"exadla/internal/sched"
	"exadla/internal/tile"
)

func qrTreeCheck(t *testing.T, m, n, nb int, mk func() (sched.Scheduler, func())) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(m*10 + n + nb)))
	aD := matgen.Dense[float64](rng, m, n)
	a := tile.FromColMajor(m, n, aD, m, nb)
	s, done := mk()
	defer done()
	f := core.QRTree(s, a)

	// Qᵀ·A₀ must equal [R; 0].
	b := tile.FromColMajor(m, n, aD, m, nb)
	core.ApplyQT(s, f, b)
	s.Wait()
	qta := b.ToColMajor()
	fac := a.ToColMajor()
	var diff, norm float64
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			v := qta[i+j*m]
			var want float64
			if i <= j {
				want = fac[i+j*m]
			}
			if d := math.Abs(v - want); d > diff {
				diff = d
			}
			if av := math.Abs(aD[i+j*m]); av > norm {
				norm = av
			}
		}
	}
	if diff > norm*float64(m+n)*0x1p-52*100 {
		t.Errorf("m=%d n=%d nb=%d: tree QᵀA vs R diff %g", m, n, nb, diff)
	}
}

func TestTileQRTree(t *testing.T) {
	for _, mk := range schedulers(t) {
		for _, d := range [][3]int{{16, 16, 4}, {64, 16, 16}, {80, 32, 16}, {96, 48, 16}, {70, 30, 32}} {
			qrTreeCheck(t, d[0], d[1], d[2], mk)
		}
	}
}

func TestQRTreeMatchesFlatR(t *testing.T) {
	// R is unique up to row signs for a full-rank matrix: flat and tree
	// orders must produce the same |R|.
	rng := rand.New(rand.NewSource(1))
	m, n, nb := 96, 32, 16
	aD := matgen.Dense[float64](rng, m, n)
	aFlat := tile.FromColMajor(m, n, aD, m, nb)
	aTree := tile.FromColMajor(m, n, aD, m, nb)
	rec1, rec2 := sched.NewRecorder(), sched.NewRecorder()
	core.QR(rec1, aFlat)
	core.QRTree(rec2, aTree)
	fFlat := aFlat.ToColMajor()
	fTree := aTree.ToColMajor()
	for j := 0; j < n; j++ {
		for i := 0; i <= j; i++ {
			got := math.Abs(fTree[i+j*m])
			want := math.Abs(fFlat[i+j*m])
			if math.Abs(got-want) > 1e-10*(1+want) {
				t.Fatalf("|R| differs at (%d,%d): %v vs %v", i, j, got, want)
			}
		}
	}
}

func TestQRTreeShorterCriticalPath(t *testing.T) {
	// The point of the tree order: on tall tile counts the panel critical
	// path is logarithmic instead of linear. Compare recorded DAGs with a
	// unit-cost model (structure, not kernel speed).
	m, n, nb := 64*16, 64, 64 // 16 tile rows, 1 tile column
	rng := rand.New(rand.NewSource(2))
	aD := matgen.Dense[float64](rng, m, n)

	depth := func(factor func(s sched.Scheduler, a *tile.Matrix[float64])) float64 {
		a := tile.FromColMajor(m, n, aD, m, nb)
		rec := sched.NewRecorder()
		factor(rec, a)
		g := rec.Graph()
		// Unit costs: structural critical path in "kernel steps".
		for i := range g.Nodes {
			if !g.Nodes[i].Barrier {
				g.Nodes[i].Cost = 1
			}
		}
		return g.CriticalPath()
	}
	flat := depth(func(s sched.Scheduler, a *tile.Matrix[float64]) { core.QR(s, a) })
	tree := depth(func(s sched.Scheduler, a *tile.Matrix[float64]) { core.QRTree(s, a) })
	if tree >= flat {
		t.Errorf("tree critical path %v not shorter than flat %v", tree, flat)
	}
	// 16 tile rows: flat chain ≈ 16 merges; tree ≈ 4 levels.
	if tree > flat/2 {
		t.Errorf("tree path %v not ≪ flat path %v", tree, flat)
	}
}

func TestGelsTree(t *testing.T) {
	for name, mk := range schedulers(t) {
		rng := rand.New(rand.NewSource(3))
		m, n, nb := 128, 32, 16
		aD := matgen.Dense[float64](rng, m, n)
		xTrue := matgen.Dense[float64](rng, n, 1)
		bD := make([]float64, m)
		blas.Gemv(blas.NoTrans, m, n, 1, aD, m, xTrue, 1, 0, bD, 1)
		a := tile.FromColMajor(m, n, aD, m, nb)
		b := tile.FromColMajor(m, 1, bD, m, nb)
		s, done := mk()
		core.GelsTree(s, a, b)
		done()
		x := b.ToColMajor()[:n]
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-9 {
				t.Fatalf("%s: x[%d] = %v want %v", name, i, x[i], xTrue[i])
			}
		}
	}
}

func TestTreePairsCoverAllRows(t *testing.T) {
	// Every row below k must be eliminated exactly once as an i2.
	for _, c := range [][2]int{{0, 1}, {0, 2}, {0, 7}, {2, 9}, {3, 16}} {
		k, mt := c[0], c[1]
		pairs := core.TreePairsForTest(k, mt)
		eliminated := map[int]int{}
		for _, p := range pairs {
			if p[0] < k || p[1] <= p[0] || p[1] >= mt {
				t.Fatalf("k=%d mt=%d: bad pair %v", k, mt, p)
			}
			eliminated[p[1]]++
		}
		for i := k + 1; i < mt; i++ {
			if eliminated[i] != 1 {
				t.Fatalf("k=%d mt=%d: row %d eliminated %d times", k, mt, i, eliminated[i])
			}
		}
		if eliminated[k] != 0 {
			t.Fatalf("k=%d mt=%d: root row eliminated", k, mt)
		}
	}
}
