package core

import (
	"exadla/internal/blas"
	"exadla/internal/lapack"
	"exadla/internal/sched"
	"exadla/internal/tile"
)

// LUFactors holds the output of the tile LU factorization with incremental
// (block pairwise) pivoting — the tile algorithm's trade of a slightly
// weaker pivoting strategy for a barrier-free DAG, exactly the compromise
// the extreme-scale argument discusses.
//
// After factorization:
//   - diagonal tiles hold the L\U of their local factorization, with U
//     updated by later TSTRF steps;
//   - super-diagonal tiles hold the final U blocks;
//   - DiagPiv[k] holds the partial pivoting permutation of step k's
//     diagonal factorization;
//   - StackL and StackPiv hold, for each (i, k) with i > k, the stacked
//     elimination factors of [U_kk; A_ik]: a ((nbₖ+nbᵢ)×nbₖ) unit-lower
//     trapezoid (strictly-lower entries) and its pivot vector.
type LUFactors[F blas.Float] struct {
	A       *tile.Matrix[F]
	DiagPiv [][]int
	// StackL and StackPiv are indexed by i + k·MT.
	StackL   [][]F
	StackPiv [][]int
}

func (f *LUFactors[F]) stackIdx(i, k int) int { return i + k*f.A.MT }

// LU computes the tile LU factorization of A with incremental pivoting as
// one dataflow graph. A singular pivot is reported after completion, like
// LAPACK's GETRF; the factorization still runs to completion.
func LU[F blas.Float](s sched.Scheduler, a *tile.Matrix[F]) (*LUFactors[F], error) {
	f := newLUFactors(a)
	es := &errState{}
	submitLU(s, f, es, false)
	return f, finishErr(es, s)
}

// LUForkJoin is the block-synchronous baseline of LU.
func LUForkJoin[F blas.Float](s sched.Scheduler, a *tile.Matrix[F]) (*LUFactors[F], error) {
	f := newLUFactors(a)
	es := &errState{}
	submitLU(s, f, es, true)
	return f, finishErr(es, s)
}

func newLUFactors[F blas.Float](a *tile.Matrix[F]) *LUFactors[F] {
	return &LUFactors[F]{
		A:        a,
		DiagPiv:  make([][]int, min(a.MT, a.NT)),
		StackL:   make([][]F, a.MT*a.NT),
		StackPiv: make([][]int, a.MT*a.NT),
	}
}

func submitLU[F blas.Float](s sched.Scheduler, f *LUFactors[F], es *errState, forkJoin bool) {
	submitLURange(s, f, es, forkJoin, 0, nil)
}

// submitLURange submits the LU DAG starting at panel step `from` (tiles
// and the pivot/stack state of earlier steps must already be in place —
// the checkpoint/restart path). afterStep, if non-nil, runs after each
// step's submissions, where checkpoint or abort tasks are injected.
func submitLURange[F blas.Float](s sched.Scheduler, f *LUFactors[F], es *errState, forkJoin bool, from int, afterStep func(k int)) {
	a := f.A
	kt := min(a.MT, a.NT)
	for k := from; k < kt; k++ {
		k := k
		s.Submit(sched.Task{
			Name:     "getrf",
			Priority: prioPanel(k, kt),
			Writes:   []sched.Handle{a.Handle(k, k)},
			Fn: timed(panelNs, func() {
				tr, tc := a.TileRows(k), a.TileCols(k)
				piv := make([]int, min(tr, tc))
				if err := lapack.Getrf(tr, tc, a.Tile(k, k), tr, piv); err != nil {
					serr := err.(*lapack.SingularError)
					es.set(&lapack.SingularError{Index: k*a.NB + serr.Index})
				}
				f.DiagPiv[k] = piv
			}),
		})
		if forkJoin {
			s.Wait()
		}
		for j := k + 1; j < a.NT; j++ {
			j := j
			s.Submit(sched.Task{
				Name:     "gessm",
				Priority: prioSolve(j, kt),
				Reads:    []sched.Handle{a.Handle(k, k)},
				Writes:   []sched.Handle{a.Handle(k, j)},
				Fn: timed(solveNs, func() {
					gessm(a.TileRows(k), a.TileCols(j), min(a.TileRows(k), a.TileCols(k)),
						f.DiagPiv[k], a.Tile(k, k), a.TileRows(k),
						a.Tile(k, j), a.TileRows(k))
				}),
			})
		}
		if forkJoin {
			s.Wait()
		}
		for i := k + 1; i < a.MT; i++ {
			i := i
			s.Submit(sched.Task{
				Name:     "tstrf",
				Priority: prioPanel(k, kt),
				Writes:   []sched.Handle{a.Handle(k, k), a.Handle(i, k)},
				Fn: timed(panelNs, func() {
					tc := a.TileCols(k)
					tr2 := a.TileRows(i)
					l, piv, err := tstrf(tc, tr2,
						a.Tile(k, k), a.TileRows(k),
						a.Tile(i, k), tr2)
					if err != nil {
						serr := err.(*lapack.SingularError)
						es.set(&lapack.SingularError{Index: k*a.NB + serr.Index})
					}
					f.StackL[f.stackIdx(i, k)] = l
					f.StackPiv[f.stackIdx(i, k)] = piv
				}),
			})
			for j := k + 1; j < a.NT; j++ {
				j := j
				s.Submit(sched.Task{
					Name:     "ssssm",
					Priority: prioUpdate(j, kt),
					Reads:    []sched.Handle{a.Handle(i, k)},
					Writes:   []sched.Handle{a.Handle(k, j), a.Handle(i, j)},
					Fn: timed(updateNs, func() {
						ssssm(a.TileCols(k), a.TileRows(i), a.TileCols(j),
							f.StackL[f.stackIdx(i, k)], f.StackPiv[f.stackIdx(i, k)],
							a.Tile(k, j), a.TileRows(k),
							a.Tile(i, j), a.TileRows(i))
					}),
				})
			}
			if forkJoin {
				s.Wait()
			}
		}
		if afterStep != nil {
			afterStep(k)
		}
	}
}

// gessm applies the diagonal tile's LU transform (pivots piv, unit-lower
// factor in the tile's strict lower triangle, kk eliminations) to the
// m×n tile C.
func gessm[F blas.Float](m, n, kk int, piv []int, l []F, ldl int, c []F, ldc int) {
	lapack.Laswp(n, c, ldc, 0, kk, piv)
	blas.Trsm(blas.Left, blas.Lower, blas.NoTrans, blas.Unit, kk, n, 1, l, ldl, c, ldc)
	if m > kk {
		// Rows below the eliminated block also carry multipliers (tall
		// diagonal tiles at the matrix boundary).
		blas.Gemm(blas.NoTrans, blas.NoTrans, m-kk, n, kk,
			-1, l[kk:], ldl, c, ldc, 1, c[kk:], ldc)
	}
}

// tstrf eliminates the m2×n tile A2 against the n×n upper-triangular block
// U in the top of the diagonal tile (leading dimension ldu), with pivoting
// across the stacked (n+m2)×n matrix [U; A2]. On return U is updated in
// place, A2 holds the bottom of the stacked unit-lower factor, and the full
// stacked factor (strictly-lower entries, including rows that pivoting
// pulled into the top) plus the pivot vector are returned for use by ssssm
// and the solver.
func tstrf[F blas.Float](n, m2 int, u []F, ldu int, a2 []F, lda2 int) (stackL []F, piv []int, err error) {
	mw := n + m2
	w := make([]F, mw*n)
	// Top: the upper triangle of U; strictly-lower stays zero.
	for j := 0; j < n; j++ {
		copy(w[j*mw:j*mw+j+1], u[j*ldu:j*ldu+j+1])
	}
	// Bottom: A2.
	for j := 0; j < n; j++ {
		copy(w[n+j*mw:n+j*mw+m2], a2[j*lda2:j*lda2+m2])
	}
	piv = make([]int, n)
	err = lapack.Getf2(mw, n, w, mw, piv)
	// Write the updated U back.
	for j := 0; j < n; j++ {
		copy(u[j*ldu:j*ldu+j+1], w[j*mw:j*mw+j+1])
	}
	// A2 receives the bottom of the unit-lower factor.
	for j := 0; j < n; j++ {
		copy(a2[j*lda2:j*lda2+m2], w[n+j*mw:n+j*mw+m2])
	}
	return w, piv, err
}

// ssssm applies a tstrf transform (stacked factor stackL with pivots piv,
// n eliminations over a (n+m2)-row stack) to the pair of tiles C1 (top n
// rows used, leading dimension ldc1) and C2 (m2×nc).
func ssssm[F blas.Float](n, m2, nc int, stackL []F, piv []int, c1 []F, ldc1 int, c2 []F, ldc2 int) {
	mw := n + m2
	// Stack the right-hand sides.
	w := make([]F, mw*nc)
	for j := 0; j < nc; j++ {
		copy(w[j*mw:j*mw+n], c1[j*ldc1:j*ldc1+n])
		copy(w[n+j*mw:n+j*mw+m2], c2[j*ldc2:j*ldc2+m2])
	}
	lapack.Laswp(nc, w, mw, 0, n, piv)
	// X1 = L̃1⁻¹·(PW)₁ then X2 = (PW)₂ − L̃2·X1.
	blas.Trsm(blas.Left, blas.Lower, blas.NoTrans, blas.Unit, n, nc, 1, stackL, mw, w, mw)
	blas.Gemm(blas.NoTrans, blas.NoTrans, m2, nc, n,
		-1, stackL[n:], mw, w, mw, 1, w[n:], mw)
	// Unstack.
	for j := 0; j < nc; j++ {
		copy(c1[j*ldc1:j*ldc1+n], w[j*mw:j*mw+n])
		copy(c2[j*ldc2:j*ldc2+m2], w[n+j*mw:n+j*mw+m2])
	}
}

// ApplyLU submits tasks applying the forward elimination recorded in the
// LU factors to the tiled right-hand side B in place (the analogue of the
// row-swap + L-solve half of GETRS), replaying the factorization order.
func ApplyLU[F blas.Float](s sched.Scheduler, f *LUFactors[F], b *tile.Matrix[F]) {
	a := f.A
	kt := min(a.MT, a.NT)
	for k := 0; k < kt; k++ {
		k := k
		for j := 0; j < b.NT; j++ {
			j := j
			s.Submit(sched.Task{
				Name:     "gessm",
				Priority: prioSolve(k, kt),
				Reads:    []sched.Handle{a.Handle(k, k)},
				Writes:   []sched.Handle{b.Handle(k, j)},
				Fn: timed(solveNs, func() {
					gessm(b.TileRows(k), b.TileCols(j), min(a.TileRows(k), a.TileCols(k)),
						f.DiagPiv[k], a.Tile(k, k), a.TileRows(k),
						b.Tile(k, j), b.TileRows(k))
				}),
			})
		}
		for i := k + 1; i < a.MT; i++ {
			i := i
			for j := 0; j < b.NT; j++ {
				j := j
				s.Submit(sched.Task{
					Name:     "ssssm",
					Priority: prioUpdate(k, kt),
					Reads:    []sched.Handle{a.Handle(i, k)},
					Writes:   []sched.Handle{b.Handle(k, j), b.Handle(i, j)},
					Fn: timed(updateNs, func() {
						ssssm(a.TileCols(k), a.TileRows(i), b.TileCols(j),
							f.StackL[f.stackIdx(i, k)], f.StackPiv[f.stackIdx(i, k)],
							b.Tile(k, j), b.TileRows(k),
							b.Tile(i, j), b.TileRows(i))
					}),
				})
			}
		}
	}
}

// Gesv factors the square tiled matrix A in place and solves A·X = B in
// place, all in one dataflow graph.
func Gesv[F blas.Float](s sched.Scheduler, a, b *tile.Matrix[F]) (*LUFactors[F], error) {
	if a.M != a.N {
		panic("core: Gesv needs a square matrix")
	}
	f := newLUFactors(a)
	es := &errState{}
	submitLU(s, f, es, false)
	ApplyLU(s, f, b)
	TrsmUpper(s, a, b)
	return f, finishErr(es, s)
}
