package core_test

import (
	"math"
	"math/rand"
	"testing"

	"exadla/internal/blas"
	"exadla/internal/core"
	"exadla/internal/lapack"
	"exadla/internal/matgen"
	"exadla/internal/sched"
	"exadla/internal/tile"
)

// schedulers returns the execution environments every algorithm is tested
// under: the sequential recorder and real runtimes with 1 and 4 workers.
func schedulers(t *testing.T) map[string]func() (sched.Scheduler, func()) {
	return map[string]func() (sched.Scheduler, func()){
		"recorder": func() (sched.Scheduler, func()) {
			return sched.NewRecorder(), func() {}
		},
		"runtime1": func() (sched.Scheduler, func()) {
			r := sched.New(1)
			return r, r.Shutdown
		},
		"runtime4": func() (sched.Scheduler, func()) {
			r := sched.New(4)
			return r, r.Shutdown
		},
	}
}

func maxAbsDiff(a, b []float64) float64 {
	var d float64
	for i := range a {
		if v := math.Abs(a[i] - b[i]); v > d {
			d = v
		}
	}
	return d
}

func TestTileGemm(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, ta := range []blas.Transpose{blas.NoTrans, blas.Trans} {
		for _, tb := range []blas.Transpose{blas.NoTrans, blas.Trans} {
			m, n, k, nb := 37, 29, 23, 8
			am, an := m, k
			if ta == blas.Trans {
				am, an = k, m
			}
			bm, bn := k, n
			if tb == blas.Trans {
				bm, bn = n, k
			}
			aD := matgen.Dense[float64](rng, am, an)
			bD := matgen.Dense[float64](rng, bm, bn)
			cD := matgen.Dense[float64](rng, m, n)
			want := append([]float64(nil), cD...)
			blas.RefGemm(ta, tb, m, n, k, 1.5, aD, am, bD, bm, -0.5, want, m)

			a := tile.FromColMajor(am, an, aD, am, nb)
			b := tile.FromColMajor(bm, bn, bD, bm, nb)
			c := tile.FromColMajor(m, n, cD, m, nb)
			r := sched.New(3)
			core.Gemm(r, ta, tb, 1.5, a, b, -0.5, c)
			r.Wait()
			r.Shutdown()
			if d := maxAbsDiff(c.ToColMajor(), want); d > 1e-10*float64(k) {
				t.Errorf("tile Gemm %v%v: max diff %g", ta, tb, d)
			}
		}
	}
}

func choleskyResidual(t *testing.T, n, nb int, forkJoin bool, mk func() (sched.Scheduler, func())) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(n*1000 + nb)))
	aD := matgen.DiagDomSPD[float64](rng, n)
	a := tile.FromColMajor(n, n, aD, n, nb)
	s, done := mk()
	defer done()
	var err error
	if forkJoin {
		err = core.CholeskyForkJoin(s, a)
	} else {
		err = core.Cholesky(s, a)
	}
	if err != nil {
		t.Fatalf("n=%d nb=%d: %v", n, nb, err)
	}
	// Reconstruct L·Lᵀ from the lower tiles.
	f := a.ToColMajor()
	l := make([]float64, n*n)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			l[i+j*n] = f[i+j*n]
		}
	}
	recon := make([]float64, n*n)
	blas.Gemm(blas.NoTrans, blas.Trans, n, n, n, 1, l, n, l, n, 0, recon, n)
	var diff, norm float64
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			if d := math.Abs(recon[i+j*n] - aD[i+j*n]); d > diff {
				diff = d
			}
			if v := math.Abs(aD[i+j*n]); v > norm {
				norm = v
			}
		}
	}
	return diff / (norm * float64(n) * 0x1p-52)
}

func TestTileCholesky(t *testing.T) {
	for name, mk := range schedulers(t) {
		for _, d := range [][2]int{{1, 4}, {7, 4}, {8, 4}, {33, 8}, {64, 16}, {100, 16}, {96, 32}} {
			if r := choleskyResidual(t, d[0], d[1], false, mk); r > 30 {
				t.Errorf("%s n=%d nb=%d: residual %g", name, d[0], d[1], r)
			}
		}
	}
}

func TestTileCholeskyForkJoin(t *testing.T) {
	for name, mk := range schedulers(t) {
		if r := choleskyResidual(t, 64, 16, true, mk); r > 30 {
			t.Errorf("%s: fork-join residual %g", name, r)
		}
	}
}

func TestTileCholeskyNotPD(t *testing.T) {
	n, nb := 32, 8
	aD := matgen.Identity[float64](n)
	aD[20+20*n] = -3
	a := tile.FromColMajor(n, n, aD, n, nb)
	r := sched.New(2)
	defer r.Shutdown()
	err := core.Cholesky(r, a)
	pd, ok := err.(*lapack.NotPositiveDefiniteError)
	if !ok {
		t.Fatalf("expected NotPositiveDefiniteError, got %v", err)
	}
	if pd.Index != 20 {
		t.Errorf("index %d, want 20", pd.Index)
	}
}

func TestTilePosv(t *testing.T) {
	for name, mk := range schedulers(t) {
		rng := rand.New(rand.NewSource(5))
		n, nrhs, nb := 60, 5, 16
		aD := matgen.DiagDomSPD[float64](rng, n)
		xTrue := matgen.Dense[float64](rng, n, nrhs)
		bD := make([]float64, n*nrhs)
		blas.Gemm(blas.NoTrans, blas.NoTrans, n, nrhs, n, 1, aD, n, xTrue, n, 0, bD, n)
		a := tile.FromColMajor(n, n, aD, n, nb)
		b := tile.FromColMajor(n, nrhs, bD, n, nb)
		s, done := mk()
		if err := core.Posv(s, a, b); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		done()
		if d := maxAbsDiff(b.ToColMajor(), xTrue); d > 1e-9 {
			t.Errorf("%s: solution diff %g", name, d)
		}
	}
}

func luResidual(t *testing.T, n, nb int, mk func() (sched.Scheduler, func())) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(n*31 + nb)))
	aD := matgen.Dense[float64](rng, n, n)
	xTrue := matgen.Dense[float64](rng, n, 1)
	bD := make([]float64, n)
	blas.Gemv(blas.NoTrans, n, n, 1, aD, n, xTrue, 1, 0, bD, 1)
	a := tile.FromColMajor(n, n, aD, n, nb)
	b := tile.FromColMajor(n, 1, bD, n, nb)
	s, done := mk()
	defer done()
	if _, err := core.Gesv(s, a, b); err != nil {
		t.Fatalf("n=%d nb=%d: %v", n, nb, err)
	}
	x := b.ToColMajor()
	// Normwise backward-ish error: ‖x − x*‖ / (‖x*‖·n·ε·κ-ish slack).
	var diff, norm float64
	for i := range x {
		if d := math.Abs(x[i] - xTrue[i]); d > diff {
			diff = d
		}
		if v := math.Abs(xTrue[i]); v > norm {
			norm = v
		}
	}
	return diff / (norm + 1)
}

func TestTileLUSolve(t *testing.T) {
	for name, mk := range schedulers(t) {
		for _, d := range [][2]int{{1, 4}, {5, 4}, {16, 4}, {33, 8}, {64, 16}, {90, 32}} {
			if r := luResidual(t, d[0], d[1], mk); r > 1e-7 {
				t.Errorf("%s n=%d nb=%d: solution error %g", name, d[0], d[1], r)
			}
		}
	}
}

func TestTileLUForkJoinMatchesDataflow(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n, nb := 48, 16
	aD := matgen.Dense[float64](rng, n, n)
	a1 := tile.FromColMajor(n, n, aD, n, nb)
	a2 := tile.FromColMajor(n, n, aD, n, nb)
	rec1 := sched.NewRecorder()
	rec2 := sched.NewRecorder()
	if _, err := core.LU(rec1, a1); err != nil {
		t.Fatal(err)
	}
	if _, err := core.LUForkJoin(rec2, a2); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(a1.ToColMajor(), a2.ToColMajor()); d != 0 {
		t.Errorf("fork-join and dataflow factors differ by %g", d)
	}
	// The fork-join graph must contain interior barriers; the dataflow
	// graph only the single trailing one from the final Wait.
	dfBarriers := len(rec1.Graph().Nodes) - rec1.Graph().Tasks()
	fjBarriers := len(rec2.Graph().Nodes) - rec2.Graph().Tasks()
	if dfBarriers > 1 {
		t.Errorf("dataflow graph contains %d barriers", dfBarriers)
	}
	if fjBarriers <= 1 {
		t.Errorf("fork-join graph contains only %d barriers", fjBarriers)
	}
}

func TestTileLURectangular(t *testing.T) {
	// Tall matrix: factor and verify by solving with the square top? Use
	// reconstruction instead: apply the recorded transforms to the identity
	// to recover PA-like product is involved; instead verify the factor by
	// checking the solve path on a square embedding is exercised via Gesv
	// above. Here just ensure tall/wide factorizations run without panic.
	rng := rand.New(rand.NewSource(11))
	for _, d := range [][3]int{{40, 24, 8}, {24, 40, 8}, {33, 17, 16}} {
		m, n, nb := d[0], d[1], d[2]
		aD := matgen.Dense[float64](rng, m, n)
		a := tile.FromColMajor(m, n, aD, m, nb)
		rec := sched.NewRecorder()
		if _, err := core.LU(rec, a); err != nil {
			t.Fatalf("%dx%d: %v", m, n, err)
		}
	}
}

func qrResidualTile(t *testing.T, m, n, nb int, forkJoin bool, mk func() (sched.Scheduler, func())) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(m*100 + n + nb)))
	aD := matgen.Dense[float64](rng, m, n)
	a := tile.FromColMajor(m, n, aD, m, nb)
	s, done := mk()
	defer done()
	var f *core.QRFactors[float64]
	if forkJoin {
		f = core.QRForkJoin(s, a)
	} else {
		f = core.QR(s, a)
	}
	// Verify via Qᵀ·A₀ == R: apply Qᵀ to the original and compare with R.
	b := tile.FromColMajor(m, n, aD, m, nb)
	core.ApplyQT(s, f, b)
	s.Wait()
	qta := b.ToColMajor()
	fac := a.ToColMajor()
	// Upper triangle must match R; lower must be ~0.
	var diff, norm float64
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			v := qta[i+j*m]
			var want float64
			if i <= j {
				want = fac[i+j*m]
			}
			if d := math.Abs(v - want); d > diff {
				diff = d
			}
			if av := math.Abs(aD[i+j*m]); av > norm {
				norm = av
			}
		}
	}
	if diff > norm*float64(m+n)*0x1p-52*100 {
		t.Errorf("m=%d n=%d nb=%d forkJoin=%v: QᵀA vs R diff %g", m, n, nb, forkJoin, diff)
	}
}

func TestTileQR(t *testing.T) {
	for name, mk := range schedulers(t) {
		_ = name
		for _, d := range [][3]int{{8, 8, 4}, {16, 16, 4}, {33, 33, 8}, {64, 32, 16}, {40, 56, 8}, {70, 70, 32}} {
			qrResidualTile(t, d[0], d[1], d[2], false, mk)
		}
	}
}

func TestTileQRForkJoin(t *testing.T) {
	for _, mk := range schedulers(t) {
		qrResidualTile(t, 48, 48, 16, true, mk)
	}
}

func TestTileGels(t *testing.T) {
	for name, mk := range schedulers(t) {
		rng := rand.New(rand.NewSource(21))
		m, n, nb := 72, 24, 16
		aD := matgen.Dense[float64](rng, m, n)
		xTrue := matgen.Dense[float64](rng, n, 1)
		bD := make([]float64, m)
		blas.Gemv(blas.NoTrans, m, n, 1, aD, m, xTrue, 1, 0, bD, 1)
		a := tile.FromColMajor(m, n, aD, m, nb)
		b := tile.FromColMajor(m, 1, bD, m, nb)
		s, done := mk()
		core.Gels(s, a, b)
		done()
		x := b.ToColMajor()[:n]
		if d := maxAbsDiff(x, xTrue); d > 1e-9 {
			t.Errorf("%s: least-squares exact system diff %g", name, d)
		}
	}
}

func TestMatVec(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	m, n, nb := 23, 17, 5
	aD := matgen.Dense[float64](rng, m, n)
	a := tile.FromColMajor(m, n, aD, m, nb)
	x := matgen.Dense[float64](rng, n, 1)
	y := matgen.Dense[float64](rng, m, 1)
	want := append([]float64(nil), y...)
	blas.RefGemv(blas.NoTrans, m, n, 2.0, aD, m, x, 1, 0.5, want, 1)
	core.MatVec(blas.NoTrans, 2.0, a, x, 0.5, y)
	if d := maxAbsDiff(y, want); d > 1e-11 {
		t.Errorf("MatVec NoTrans diff %g", d)
	}
	xt := matgen.Dense[float64](rng, m, 1)
	yt := matgen.Dense[float64](rng, n, 1)
	wantT := append([]float64(nil), yt...)
	blas.RefGemv(blas.Trans, m, n, 1.0, aD, m, xt, 1, 0, wantT, 1)
	core.MatVec(blas.Trans, 1.0, a, xt, 0, yt)
	if d := maxAbsDiff(yt, wantT); d > 1e-11 {
		t.Errorf("MatVec Trans diff %g", d)
	}
}

func TestCholeskyGraphShape(t *testing.T) {
	// For NT tile columns the Cholesky DAG has NT potrf, NT(NT-1)/2 trsm,
	// NT(NT-1)/2 syrk and NT(NT-1)(NT-2)/6 gemm tasks.
	n, nb := 64, 16 // NT = 4
	rng := rand.New(rand.NewSource(41))
	aD := matgen.DiagDomSPD[float64](rng, n)
	a := tile.FromColMajor(n, n, aD, n, nb)
	rec := sched.NewRecorder()
	if err := core.Cholesky(rec, a); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, node := range rec.Graph().Nodes {
		counts[node.Name]++
	}
	nt := 4
	want := map[string]int{
		"potrf": nt,
		"trsm":  nt * (nt - 1) / 2,
		"syrk":  nt * (nt - 1) / 2,
		"gemm":  nt * (nt - 1) * (nt - 2) / 6,
	}
	for k, w := range want {
		if counts[k] != w {
			t.Errorf("%s count %d, want %d", k, counts[k], w)
		}
	}
}

func TestForkJoinGraphHasLowerParallelism(t *testing.T) {
	// The defining property the talk illustrates: at equal work, the
	// fork-join DAG's critical path is at least the dataflow DAG's.
	n, nb := 96, 16
	rng := rand.New(rand.NewSource(43))
	aD := matgen.DiagDomSPD[float64](rng, n)
	a1 := tile.FromColMajor(n, n, aD, n, nb)
	a2 := tile.FromColMajor(n, n, aD, n, nb)
	rec1 := sched.NewRecorder()
	rec2 := sched.NewRecorder()
	if err := core.Cholesky(rec1, a1); err != nil {
		t.Fatal(err)
	}
	if err := core.CholeskyForkJoin(rec2, a2); err != nil {
		t.Fatal(err)
	}
	df, fj := rec1.Graph(), rec2.Graph()
	// Compare structure, not measured time: unit costs make the test
	// deterministic (measured µs-scale task costs are noise-dominated when
	// the host is loaded).
	for i := range df.Nodes {
		if !df.Nodes[i].Barrier {
			df.Nodes[i].Cost = 1
		}
	}
	for i := range fj.Nodes {
		if !fj.Nodes[i].Barrier {
			fj.Nodes[i].Cost = 1
		}
	}
	dfRes := sched.Simulate(df, 16)
	fjRes := sched.Simulate(fj, 16)
	if dfRes.Makespan > fjRes.Makespan {
		t.Errorf("dataflow makespan %g > fork-join %g", dfRes.Makespan, fjRes.Makespan)
	}
	if df.CriticalPath() > fj.CriticalPath() {
		t.Errorf("dataflow critical path %g > fork-join %g", df.CriticalPath(), fj.CriticalPath())
	}
}

func TestTileCholeskyFloat32(t *testing.T) {
	// The tile algorithms are generic; exercise the float32 instantiation
	// end to end with a float32-scaled tolerance.
	rng := rand.New(rand.NewSource(55))
	n, nb := 64, 16
	aD := matgen.DiagDomSPD[float32](rng, n)
	a := tile.FromColMajor(n, n, aD, n, nb)
	r := sched.New(2)
	defer r.Shutdown()
	if err := core.Cholesky(r, a); err != nil {
		t.Fatal(err)
	}
	f := a.ToColMajor()
	l := make([]float32, n*n)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			l[i+j*n] = f[i+j*n]
		}
	}
	recon := make([]float32, n*n)
	blas.Gemm(blas.NoTrans, blas.Trans, n, n, n, 1, l, n, l, n, 0, recon, n)
	var diff, norm float64
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			if d := math.Abs(float64(recon[i+j*n] - aD[i+j*n])); d > diff {
				diff = d
			}
			if v := math.Abs(float64(aD[i+j*n])); v > norm {
				norm = v
			}
		}
	}
	if diff > norm*float64(n)*0x1p-23*30 {
		t.Errorf("float32 tile Cholesky reconstruction diff %g", diff)
	}
}

func TestTileQRFloat32(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	m, n, nb := 48, 32, 16
	aD := matgen.Dense[float32](rng, m, n)
	a := tile.FromColMajor(m, n, aD, m, nb)
	rec := sched.NewRecorder()
	f := core.QR(rec, a)
	b := tile.FromColMajor(m, n, aD, m, nb)
	core.ApplyQT(rec, f, b)
	qta := b.ToColMajor()
	fac := a.ToColMajor()
	var diff, norm float64
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			var want float32
			if i <= j {
				want = fac[i+j*m]
			}
			if d := math.Abs(float64(qta[i+j*m] - want)); d > diff {
				diff = d
			}
			if v := math.Abs(float64(aD[i+j*m])); v > norm {
				norm = v
			}
		}
	}
	if diff > norm*float64(m+n)*0x1p-23*100 {
		t.Errorf("float32 tile QR QᵀA vs R diff %g", diff)
	}
}
