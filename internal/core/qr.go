package core

import (
	"exadla/internal/blas"
	"exadla/internal/lapack"
	"exadla/internal/sched"
	"exadla/internal/tile"
)

// QRFactors holds the output of a tile QR factorization: A's tiles contain
// R in the upper triangle and the Householder vectors below, and T contains
// the per-tile block-reflector triangular factors (from GEQRT, plus TSQRT
// factors for the flat order). Tree-order factorizations (QRTree) also
// carry the pairwise-merge factors in T2 and replay a different elimination
// plan in ApplyQT.
type QRFactors[F blas.Float] struct {
	A  *tile.Matrix[F]
	T  *tile.Matrix[F]
	T2 *tile.Matrix[F] // tree merge factors; nil for the flat order

	tree bool
}

// QR computes the tile QR factorization of A (m×n, any shape) using the
// flat (PLASMA-style) elimination order: each subdiagonal tile is folded
// into the panel's triangular factor with a TSQRT kernel as soon as its
// dependences allow. The returned factors reference A in place.
func QR[F blas.Float](s sched.Scheduler, a *tile.Matrix[F]) *QRFactors[F] {
	f := &QRFactors[F]{A: a, T: tile.New[F](a.MT*a.NB, a.NT*a.NB, a.NB)}
	submitQR(s, f, false)
	s.Wait()
	return f
}

// QRForkJoin is the block-synchronous baseline of QR, with a barrier after
// each phase of each panel step.
func QRForkJoin[F blas.Float](s sched.Scheduler, a *tile.Matrix[F]) *QRFactors[F] {
	f := &QRFactors[F]{A: a, T: tile.New[F](a.MT*a.NB, a.NT*a.NB, a.NB)}
	submitQR(s, f, true)
	s.Wait()
	return f
}

func submitQR[F blas.Float](s sched.Scheduler, f *QRFactors[F], forkJoin bool) {
	a, t := f.A, f.T
	kt := min(a.MT, a.NT)
	for k := 0; k < kt; k++ {
		k := k
		s.Submit(sched.Task{
			Name:     "geqrt",
			Priority: prioPanel(k, kt),
			Writes:   []sched.Handle{a.Handle(k, k), t.Handle(k, k)},
			Fn: timed(panelNs, func() {
				geqrt(a.TileRows(k), a.TileCols(k), a.Tile(k, k), a.TileRows(k), t.Tile(k, k), t.TileRows(k))
			}),
		})
		if forkJoin {
			s.Wait()
		}
		for j := k + 1; j < a.NT; j++ {
			j := j
			s.Submit(sched.Task{
				Name:     "unmqr",
				Priority: prioSolve(j, kt),
				Reads:    []sched.Handle{a.Handle(k, k), t.Handle(k, k)},
				Writes:   []sched.Handle{a.Handle(k, j)},
				Fn: timed(solveNs, func() {
					unmqr(a.TileRows(k), a.TileCols(j), min(a.TileRows(k), a.TileCols(k)),
						a.Tile(k, k), a.TileRows(k), t.Tile(k, k), t.TileRows(k),
						a.Tile(k, j), a.TileRows(k))
				}),
			})
		}
		if forkJoin {
			s.Wait()
		}
		for i := k + 1; i < a.MT; i++ {
			i := i
			s.Submit(sched.Task{
				Name:     "tsqrt",
				Priority: prioPanel(k, kt),
				Reads:    nil,
				Writes:   []sched.Handle{a.Handle(k, k), a.Handle(i, k), t.Handle(i, k)},
				Fn: timed(panelNs, func() {
					tsqrt(a.TileCols(k), a.TileRows(i),
						a.Tile(k, k), a.TileRows(k),
						a.Tile(i, k), a.TileRows(i),
						t.Tile(i, k), t.TileRows(i))
				}),
			})
			for j := k + 1; j < a.NT; j++ {
				j := j
				s.Submit(sched.Task{
					Name:     "tsmqr",
					Priority: prioUpdate(j, kt),
					Reads:    []sched.Handle{a.Handle(i, k), t.Handle(i, k)},
					Writes:   []sched.Handle{a.Handle(k, j), a.Handle(i, j)},
					Fn: timed(updateNs, func() {
						tsmqr(blas.Trans, a.TileCols(k), a.TileRows(i), a.TileCols(j),
							a.Tile(i, k), a.TileRows(i),
							t.Tile(i, k), t.TileRows(i),
							a.Tile(k, j), a.TileRows(k),
							a.Tile(i, j), a.TileRows(i))
					}),
				})
			}
			if forkJoin {
				s.Wait()
			}
		}
	}
}

// geqrt factors one m×n tile: QR with Householder reflectors plus the
// block-reflector triangular factor T (k×k, k = min(m, n)).
func geqrt[F blas.Float](m, n int, a []F, lda int, t []F, ldt int) {
	k := min(m, n)
	tau := make([]F, k)
	work := make([]F, n)
	lapack.Geqr2(m, n, a, lda, tau, work)
	lapack.Larft(m, k, a, lda, tau, t, ldt)
}

// unmqr applies Qᵀ from a geqrt-factored tile (k reflectors in v, factor t)
// to the m×n tile c.
func unmqr[F blas.Float](m, n, k int, v []F, ldv int, t []F, ldt int, c []F, ldc int) {
	work := make([]F, n*k)
	lapack.Larfb(blas.Left, blas.Trans, m, n, k, v, ldv, t, ldt, c, ldc, work)
}

// tsqrt computes the structured QR factorization of the (n+m2)×n stacked
// matrix [R; A2] where R (n×n upper triangular) lives in the top of tile
// r (leading dimension ldr) and A2 is the m2×n tile a2. On return R is
// updated, a2 holds the dense lower parts of the Householder vectors (the
// top parts are implicit identity columns), and t holds the n×n triangular
// block-reflector factor.
func tsqrt[F blas.Float](n, m2 int, r []F, ldr int, a2 []F, lda2 int, t []F, ldt int) {
	w := make([]F, n)
	for j := 0; j < n; j++ {
		// Reflector zeroing A2[:, j] against R[j, j].
		beta, tau := lapack.Larfg(1+m2, r[j+j*ldr], a2[j*lda2:j*lda2+m2], 1)
		r[j+j*ldr] = beta
		v2 := a2[j*lda2 : j*lda2+m2]
		if j+1 < n && tau != 0 {
			nc := n - j - 1
			// w = R[j, j+1:] + A2[:, j+1:]ᵀ·v2.
			for c := 0; c < nc; c++ {
				w[c] = r[j+(j+1+c)*ldr]
			}
			blas.Gemv(blas.Trans, m2, nc, 1, a2[(j+1)*lda2:], lda2, v2, 1, 1, w[:nc], 1)
			// R[j, j+1:] -= tau·w;  A2[:, j+1:] -= tau·v2·wᵀ.
			for c := 0; c < nc; c++ {
				r[j+(j+1+c)*ldr] -= tau * w[c]
			}
			blas.Ger(m2, nc, -tau, v2, 1, w[:nc], 1, a2[(j+1)*lda2:], lda2)
		}
		// T column j: T[0:j, j] = −tau·T[0:j,0:j]·(V2[:,0:j]ᵀ·v2); the
		// implicit identity tops are orthogonal so only V2 contributes.
		if j > 0 {
			blas.Gemv(blas.Trans, m2, j, -tau, a2, lda2, v2, 1, 0, t[j*ldt:], 1)
			blas.Trmv(blas.Upper, blas.NoTrans, blas.NonUnit, j, t, ldt, t[j*ldt:], 1)
		}
		t[j+j*ldt] = tau
	}
}

// tsmqr applies the block reflector from tsqrt (v2 m2×k = dense vector
// parts, t k×k) to the stacked pair [C1; C2]: C1 is k×n (top rows of an
// nb×n tile with leading dimension ldc1), C2 is m2×n.
// trans selects Qᵀ (blas.Trans, used during factorization and solves) or Q.
func tsmqr[F blas.Float](trans blas.Transpose, k, m2, n int, v2 []F, ldv2 int, t []F, ldt int, c1 []F, ldc1 int, c2 []F, ldc2 int) {
	if k == 0 || n == 0 {
		return
	}
	// W = C1 + V2ᵀ·C2 (k×n).
	w := make([]F, k*n)
	lapack.Lacpy(lapack.General, k, n, c1, ldc1, w, k)
	blas.Gemm(blas.Trans, blas.NoTrans, k, n, m2, 1, v2, ldv2, c2, ldc2, 1, w, k)
	// W ← op(T)·W: Tᵀ for Qᵀ, T for Q.
	tt := blas.NoTrans
	if trans == blas.Trans {
		tt = blas.Trans
	}
	blas.Trmm(blas.Left, blas.Upper, tt, blas.NonUnit, k, n, 1, t, ldt, w, k)
	// C1 -= W; C2 -= V2·W.
	for j := 0; j < n; j++ {
		for i := 0; i < k; i++ {
			c1[i+j*ldc1] -= w[i+j*k]
		}
	}
	blas.Gemm(blas.NoTrans, blas.NoTrans, m2, n, k, -1, v2, ldv2, w, k, 1, c2, ldc2)
}

// ApplyQT submits tasks applying Qᵀ (from the tile QR factors) to the tiled
// matrix B in place, replaying the factorization's elimination order.
func ApplyQT[F blas.Float](s sched.Scheduler, f *QRFactors[F], b *tile.Matrix[F]) {
	if f.tree {
		applyQTTree(s, f, b)
		return
	}
	a, t := f.A, f.T
	kt := min(a.MT, a.NT)
	for k := 0; k < kt; k++ {
		k := k
		for j := 0; j < b.NT; j++ {
			j := j
			s.Submit(sched.Task{
				Name:     "unmqr",
				Priority: prioSolve(k, kt),
				Reads:    []sched.Handle{a.Handle(k, k), t.Handle(k, k)},
				Writes:   []sched.Handle{b.Handle(k, j)},
				Fn: timed(solveNs, func() {
					unmqr(b.TileRows(k), b.TileCols(j), min(a.TileRows(k), a.TileCols(k)),
						a.Tile(k, k), a.TileRows(k), t.Tile(k, k), t.TileRows(k),
						b.Tile(k, j), b.TileRows(k))
				}),
			})
		}
		for i := k + 1; i < a.MT; i++ {
			i := i
			for j := 0; j < b.NT; j++ {
				j := j
				s.Submit(sched.Task{
					Name:     "tsmqr",
					Priority: prioUpdate(k, kt),
					Reads:    []sched.Handle{a.Handle(i, k), t.Handle(i, k)},
					Writes:   []sched.Handle{b.Handle(k, j), b.Handle(i, j)},
					Fn: timed(updateNs, func() {
						tsmqr(blas.Trans, a.TileCols(k), a.TileRows(i), b.TileCols(j),
							a.Tile(i, k), a.TileRows(i),
							t.Tile(i, k), t.TileRows(i),
							b.Tile(k, j), b.TileRows(k),
							b.Tile(i, j), b.TileRows(i))
					}),
				})
			}
		}
	}
}

// Gels solves the least-squares problem min‖A·X − B‖ for a tall tiled
// matrix A (M ≥ N) and tiled right-hand side B (same M), in one dataflow
// graph: tile QR, apply Qᵀ to B, then solve R·X = B over the top N rows.
// The solution occupies the first N rows of B.
func Gels[F blas.Float](s sched.Scheduler, a, b *tile.Matrix[F]) *QRFactors[F] {
	if a.M < a.N {
		panic("core: Gels requires M ≥ N")
	}
	f := &QRFactors[F]{A: a, T: tile.New[F](a.MT*a.NB, a.NT*a.NB, a.NB)}
	submitQR(s, f, false)
	ApplyQT(s, f, b)
	TrsmUpper(s, a, b)
	s.Wait()
	return f
}
