package core

import (
	"time"

	"exadla/internal/metrics"
)

// Phase time split for the tile factorizations, in the default metrics
// registry:
//
//	core.panel_ns   — panel kernels on the critical path (potrf, getrf,
//	                  tstrf, geqrt, tsqrt)
//	core.solve_ns   — panel-application solves (trsm, gessm, unmqr)
//	core.update_ns  — trailing-matrix updates (gemm, syrk, ssssm, tsmqr)
//
// The panel:update ratio is the headline scheduling diagnostic: panel work
// is the serial spine of the DAG, update work is what the runtime overlaps
// against it, so a high panel share at low worker occupancy indicates a
// critical-path (not bandwidth) bottleneck.
var (
	panelNs  = metrics.Default().Counter("core.panel_ns")
	solveNs  = metrics.Default().Counter("core.solve_ns")
	updateNs = metrics.Default().Counter("core.update_ns")
)

// timed wraps a task body so its wall time lands on the given phase
// counter. The wrapper is built once at submission; with metrics disabled
// it adds a single atomic load per task execution.
func timed(phase *metrics.Counter, fn func()) func() {
	return func() {
		if !metrics.Enabled() {
			fn()
			return
		}
		start := time.Now()
		fn()
		phase.Add(time.Since(start).Nanoseconds())
	}
}

// timedErr is timed for error-returning task bodies.
func timedErr(phase *metrics.Counter, fn func() error) func() error {
	return func() error {
		if !metrics.Enabled() {
			return fn()
		}
		start := time.Now()
		err := fn()
		phase.Add(time.Since(start).Nanoseconds())
		return err
	}
}
