package core_test

import (
	"math/rand"
	"testing"
	"time"

	"exadla/internal/core"
	"exadla/internal/ft"
	"exadla/internal/matgen"
	"exadla/internal/metrics"
	"exadla/internal/sched"
	"exadla/internal/tile"
)

// These are the hard-fault acceptance tests: wholesale tile loss repaired
// by erasure reconstruction (fail-stop and checksum-detected), and full
// factorizations surviving worker kills and task hangs through the
// scheduler watchdog — in every case with a factor bitwise identical to
// the fault-free run, which is what the GF(2) parity and the pre-body
// chaos model buy.

func TestLoseTilesValidation(t *testing.T) {
	const n, nb = 96, 48
	rng := rand.New(rand.NewSource(50))
	aD := matgen.DiagDomSPD[float64](rng, n)

	a := tile.FromColMajor(n, n, append([]float64(nil), aD...), n, nb)
	r := sched.New(2)
	defer r.Shutdown()
	err := core.ResilientCholesky(r, a, core.FTOptions{
		LoseTiles: []core.TileLoss{{Step: 0, I: 1, J: 0}},
	})
	if err == nil {
		t.Error("LoseTiles without Erasure accepted")
	}

	a2 := tile.FromColMajor(n, n, append([]float64(nil), aD...), n, nb)
	err = core.ResilientCholesky(r, a2, core.FTOptions{
		Erasure:   true,
		LoseTiles: []core.TileLoss{{Step: 0, I: 9, J: 0}},
	})
	if err == nil {
		t.Error("out-of-grid TileLoss accepted")
	}
	if _, err := core.ResilientLU(r, a2, core.FTOptions{
		LoseTiles: []core.TileLoss{{Step: 0, I: 0, J: 0}},
	}); err == nil {
		t.Error("LU LoseTiles without Erasure accepted")
	}
}

// TestResilientCholeskyErasureFailStopLoss: three finalized tiles —
// including a diagonal tile — are wiped mid-factorization and rebuilt
// fail-stop from their row parity groups before any later reader runs.
// Reconstruction is XOR subtraction over bit patterns, so the factor is
// bitwise identical to the fault-free run.
func TestResilientCholeskyErasureFailStopLoss(t *testing.T) {
	const n, nb, seed = 192, 48, 31
	aD, want := cleanCholesky(t, n, nb, seed)
	a := tile.FromColMajor(n, n, aD, n, nb)
	var stats ft.Stats
	r := sched.New(4, sched.WithRetry(3, 0))
	defer r.Shutdown()
	err := core.ResilientCholesky(r, a, core.FTOptions{
		Erasure: true,
		Stats:   &stats,
		LoseTiles: []core.TileLoss{
			{Step: 1, I: 2, J: 0}, // panel tile, committed at step 0
			{Step: 2, I: 3, J: 1}, // panel tile, committed at step 1
			{Step: 3, I: 1, J: 1}, // diagonal tile, committed at step 1
		},
	})
	if err != nil {
		t.Fatalf("fail-stop loss run failed: %v", err)
	}
	if d := lowerDiff(n, a.ToColMajor(), want); d != 0 {
		t.Errorf("reconstructed factor differs from clean run by %g", d)
	}
	if got := stats.TilesReconstructed.Load(); got != 3 {
		t.Errorf("TilesReconstructed = %d, want 3", got)
	}
	if got := stats.Injected.Load(); got != 3 {
		t.Errorf("Injected = %d, want 3", got)
	}
}

// TestResilientCholeskySilentLossCaughtBySweep: a tile with no remaining
// readers is wiped with no fail-stop notification. The final verification
// sweep sees checksum faults across many columns — the signature of
// wholesale loss, not a flip — and routes to erasure reconstruction
// instead of per-entry correction; the retried sweep then passes.
func TestResilientCholeskySilentLossCaughtBySweep(t *testing.T) {
	const n, nb, seed = 192, 48, 31
	aD, want := cleanCholesky(t, n, nb, seed)
	a := tile.FromColMajor(n, n, aD, n, nb)
	var stats ft.Stats
	r := sched.New(4, sched.WithRetry(3, 0))
	defer r.Shutdown()
	err := core.ResilientCholesky(r, a, core.FTOptions{
		Erasure: true,
		Stats:   &stats,
		// (2,0) is finalized at step 0 and only read by step-0 updates:
		// by step 3 it has no readers left before the sweep.
		LoseTiles: []core.TileLoss{{Step: 3, I: 2, J: 0, Silent: true}},
	})
	if err != nil {
		t.Fatalf("silent loss run failed: %v", err)
	}
	if d := lowerDiff(n, a.ToColMajor(), want); d != 0 {
		t.Errorf("reconstructed factor differs from clean run by %g", d)
	}
	if got := stats.TilesReconstructed.Load(); got != 1 {
		t.Errorf("TilesReconstructed = %d, want 1", got)
	}
	if stats.Detected.Load() == 0 {
		t.Error("silent loss was not detected")
	}
}

// TestResilientCholeskyHardChaosBitwise is the hard-fault half of the
// chaos acceptance run: worker kills and task hangs (recovered by the
// watchdog) plus fail-stop tile losses (recovered by erasure), and the
// factor still matches the clean run bit for bit.
func TestResilientCholeskyHardChaosBitwise(t *testing.T) {
	const n, nb, seed = 384, 48, 52
	aD, want := cleanCholesky(t, n, nb, seed)
	a := tile.FromColMajor(n, n, aD, n, nb)
	var stats ft.Stats
	reg := metrics.New()
	r := sched.New(4,
		sched.WithMetrics(reg),
		sched.WithRetry(50, 0),
		sched.WithTaskDeadline(300*time.Millisecond),
		sched.WithHardChaos(53, 0.05, 0.03, 3),
	)
	defer r.Shutdown()
	err := core.ResilientCholesky(r, a, core.FTOptions{
		Erasure: true,
		Stats:   &stats,
		LoseTiles: []core.TileLoss{
			{Step: 1, I: 2, J: 0},
			{Step: 4, I: 5, J: 2},
		},
	})
	if err != nil {
		t.Fatalf("hard-chaos run failed: %v", err)
	}
	if d := lowerDiff(n, a.ToColMajor(), want); d != 0 {
		t.Errorf("hard-chaos factor differs from clean run by %g", d)
	}
	if got := stats.TilesReconstructed.Load(); got != 2 {
		t.Errorf("TilesReconstructed = %d, want 2", got)
	}
	c := reg.Snapshot().Counters
	lost, timedOut := c["sched.workers_lost"], c["sched.tasks_timed_out"]
	if lost < 1 || lost > 3 {
		t.Errorf("workers_lost = %d, want 1..3 (budget 3)", lost)
	}
	if lost != timedOut {
		t.Errorf("workers_lost %d != tasks_timed_out %d", lost, timedOut)
	}
}

// cleanLU returns the input and the fault-free packed LU factor of the
// seeded test matrix.
func cleanLU(t *testing.T, n, nb int, seed int64) (input, factor []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	aD := matgen.DiagDomSPD[float64](rng, n)
	a := tile.FromColMajor(n, n, append([]float64(nil), aD...), n, nb)
	r := sched.New(4)
	defer r.Shutdown()
	if _, err := core.LU(r, a); err != nil {
		t.Fatal(err)
	}
	return aD, a.ToColMajor()
}

// TestResilientLUErasureFailStopLoss is the LU analogue of the Cholesky
// fail-stop test: tiles finalized by earlier steps of the incremental-
// pivoting factorization are lost and rebuilt bitwise from row parity.
func TestResilientLUErasureFailStopLoss(t *testing.T) {
	const n, nb, seed = 192, 48, 54
	aD, want := cleanLU(t, n, nb, seed)
	a := tile.FromColMajor(n, n, aD, n, nb)
	var stats ft.Stats
	r := sched.New(4, sched.WithRetry(3, 0))
	defer r.Shutdown()
	_, err := core.ResilientLU(r, a, core.FTOptions{
		Erasure: true,
		Stats:   &stats,
		LoseTiles: []core.TileLoss{
			{Step: 1, I: 2, J: 0}, // sub-diagonal tile, recorded at step 0
			{Step: 2, I: 1, J: 3}, // U-row tile, recorded at step 1
		},
	})
	if err != nil {
		t.Fatalf("fail-stop loss run failed: %v", err)
	}
	if d := maxAbsDiff(a.ToColMajor(), want); d != 0 {
		t.Errorf("reconstructed LU factor differs from clean run by %g", d)
	}
	if got := stats.TilesReconstructed.Load(); got != 2 {
		t.Errorf("TilesReconstructed = %d, want 2", got)
	}
}

// TestResilientLUSilentLossCaughtBySweep: a finalized LU tile with no
// remaining readers is silently zeroed; the final sweep detects the
// multi-column fault pattern and reconstructs it.
func TestResilientLUSilentLossCaughtBySweep(t *testing.T) {
	const n, nb, seed = 192, 48, 55
	aD, want := cleanLU(t, n, nb, seed)
	a := tile.FromColMajor(n, n, aD, n, nb)
	var stats ft.Stats
	r := sched.New(4, sched.WithRetry(3, 0))
	defer r.Shutdown()
	_, err := core.ResilientLU(r, a, core.FTOptions{
		Erasure: true,
		Stats:   &stats,
		// (3,0) is finalized by its step-0 tstrf and never read again by
		// the factorization (ssssm consumes the L stack copy, not A(i,k)).
		LoseTiles: []core.TileLoss{{Step: 2, I: 3, J: 0, Silent: true}},
	})
	if err != nil {
		t.Fatalf("silent loss run failed: %v", err)
	}
	if d := maxAbsDiff(a.ToColMajor(), want); d != 0 {
		t.Errorf("reconstructed LU factor differs from clean run by %g", d)
	}
	if got := stats.TilesReconstructed.Load(); got != 1 {
		t.Errorf("TilesReconstructed = %d, want 1", got)
	}
	if stats.Detected.Load() == 0 {
		t.Error("silent loss was not detected")
	}
}

// TestResilientLUHardChaosBitwise: the LU half of the hard-fault chaos
// acceptance run — worker kills, task hangs, and a fail-stop tile loss,
// with a bitwise-identical packed factor.
func TestResilientLUHardChaosBitwise(t *testing.T) {
	const n, nb, seed = 384, 48, 56
	aD, want := cleanLU(t, n, nb, seed)
	a := tile.FromColMajor(n, n, aD, n, nb)
	var stats ft.Stats
	reg := metrics.New()
	r := sched.New(4,
		sched.WithMetrics(reg),
		sched.WithRetry(50, 0),
		sched.WithTaskDeadline(300*time.Millisecond),
		sched.WithHardChaos(57, 0.04, 0.02, 3),
	)
	defer r.Shutdown()
	_, err := core.ResilientLU(r, a, core.FTOptions{
		Erasure:   true,
		Stats:     &stats,
		LoseTiles: []core.TileLoss{{Step: 2, I: 4, J: 1}},
	})
	if err != nil {
		t.Fatalf("hard-chaos run failed: %v", err)
	}
	if d := maxAbsDiff(a.ToColMajor(), want); d != 0 {
		t.Errorf("hard-chaos LU factor differs from clean run by %g", d)
	}
	if got := stats.TilesReconstructed.Load(); got != 1 {
		t.Errorf("TilesReconstructed = %d, want 1", got)
	}
	c := reg.Snapshot().Counters
	lost := c["sched.workers_lost"]
	if lost < 1 || lost > 3 {
		t.Errorf("workers_lost = %d, want 1..3 (budget 3)", lost)
	}
}
