package core_test

import (
	"math"
	"math/rand"
	"testing"

	"exadla/internal/blas"
	"exadla/internal/core"
	"exadla/internal/lapack"
	"exadla/internal/matgen"
	"exadla/internal/tile"
)

// lowerOf extracts the lower triangle (dense storage) from a tiled matrix.
func lowerOf(a *tile.Matrix[float64]) []float64 {
	n := a.N
	d := a.ToColMajor()
	out := make([]float64, n*n)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			out[i+j*n] = d[i+j*n]
		}
	}
	return out
}

func TestTrtriLowerTiles(t *testing.T) {
	for name, mk := range schedulers(t) {
		for _, d := range [][2]int{{16, 8}, {33, 8}, {64, 16}, {96, 32}} {
			n, nb := d[0], d[1]
			rng := rand.New(rand.NewSource(int64(n)))
			lD := matgen.Dense[float64](rng, n, n)
			for i := 0; i < n; i++ {
				lD[i+i*n] = 2 + math.Abs(lD[i+i*n])
			}
			// Reference inverse of the lower triangle.
			want := append([]float64(nil), lD...)
			if err := lapack.Trtri(blas.Lower, blas.NonUnit, n, want, n); err != nil {
				t.Fatal(err)
			}

			a := tile.FromColMajor(n, n, lD, n, nb)
			s, done := mk()
			core.TrtriLowerForTest(s, a)
			s.Wait()
			done()
			got := lowerOf(a)
			for j := 0; j < n; j++ {
				for i := j; i < n; i++ {
					if math.Abs(got[i+j*n]-want[i+j*n]) > 1e-9*(1+math.Abs(want[i+j*n])) {
						t.Fatalf("%s n=%d nb=%d: L⁻¹(%d,%d) = %v want %v",
							name, n, nb, i, j, got[i+j*n], want[i+j*n])
					}
				}
			}
		}
	}
}

func TestLauumLowerTiles(t *testing.T) {
	for name, mk := range schedulers(t) {
		for _, d := range [][2]int{{16, 8}, {40, 8}, {64, 16}} {
			n, nb := d[0], d[1]
			rng := rand.New(rand.NewSource(int64(n * 3)))
			lD := matgen.Dense[float64](rng, n, n)
			want := append([]float64(nil), lD...)
			lapack.Lauum(blas.Lower, n, want, n)

			a := tile.FromColMajor(n, n, lD, n, nb)
			s, done := mk()
			core.LauumLower(s, a)
			s.Wait()
			done()
			got := a.ToColMajor()
			for j := 0; j < n; j++ {
				for i := j; i < n; i++ {
					if math.Abs(got[i+j*n]-want[i+j*n]) > 1e-10*float64(n)*(1+math.Abs(want[i+j*n])) {
						t.Fatalf("%s n=%d nb=%d: (WᵀW)(%d,%d) = %v want %v",
							name, n, nb, i, j, got[i+j*n], want[i+j*n])
					}
				}
			}
		}
	}
}

func TestTilePotri(t *testing.T) {
	for name, mk := range schedulers(t) {
		n, nb := 80, 16
		rng := rand.New(rand.NewSource(7))
		aD := matgen.DiagDomSPD[float64](rng, n)
		a := tile.FromColMajor(n, n, aD, n, nb)
		s, done := mk()
		if err := core.Potri(s, a); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		done()
		// A · A⁻¹ ≈ I using the symmetric inverse from the lower triangle.
		invL := lowerOf(a)
		inv := make([]float64, n*n)
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				if i >= j {
					inv[i+j*n] = invL[i+j*n]
				} else {
					inv[i+j*n] = invL[j+i*n]
				}
			}
		}
		prod := make([]float64, n*n)
		blas.Gemm(blas.NoTrans, blas.NoTrans, n, n, n, 1, aD, n, inv, n, 0, prod, n)
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(prod[i+j*n]-want) > 1e-9*float64(n) {
					t.Fatalf("%s: A·A⁻¹(%d,%d) = %v", name, i, j, prod[i+j*n])
				}
			}
		}
	}
}

func TestTilePotriNotPD(t *testing.T) {
	n, nb := 32, 8
	aD := matgen.Identity[float64](n)
	aD[5+5*n] = -2
	a := tile.FromColMajor(n, n, aD, n, nb)
	r, done := schedulers(t)["runtime4"]()
	defer done()
	if err := core.Potri(r, a); err == nil {
		t.Error("expected not-positive-definite error")
	}
}
