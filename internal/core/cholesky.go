package core

import (
	"exadla/internal/blas"
	"exadla/internal/lapack"
	"exadla/internal/sched"
	"exadla/internal/tile"
)

// Cholesky computes the lower-triangular tile Cholesky factorization
// A = L·Lᵀ of the symmetric positive definite tiled matrix A (only the
// lower triangle is referenced), scheduling the full task DAG at once and
// waiting for completion. On success the lower tiles of A hold L.
func Cholesky[F blas.Float](s sched.Scheduler, a *tile.Matrix[F]) error {
	es := &errState{}
	submitCholesky(s, a, es, false)
	return finishErr(es, s)
}

// CholeskyForkJoin is the block-synchronous baseline: identical tile
// kernels, but with a barrier after the panel factorization, after the
// panel solves, and after the trailing update of every step.
func CholeskyForkJoin[F blas.Float](s sched.Scheduler, a *tile.Matrix[F]) error {
	es := &errState{}
	submitCholesky(s, a, es, true)
	return finishErr(es, s)
}

// submitCholesky submits the tile Cholesky DAG. With forkJoin set it
// synchronizes between phases instead of relying on dataflow dependences.
func submitCholesky[F blas.Float](s sched.Scheduler, a *tile.Matrix[F], es *errState, forkJoin bool) {
	submitCholeskyRange(s, a, es, forkJoin, 0, nil)
}

// submitCholeskyRange submits the Cholesky DAG starting at panel step
// `from` (the tiles must already hold the state left by steps 0..from-1 —
// the checkpoint/restart path). afterStep, if non-nil, is invoked after
// each step's tasks are submitted and before the next step's, the
// submission point where a consistent-frontier task (checkpoint, abort)
// can be injected.
func submitCholeskyRange[F blas.Float](s sched.Scheduler, a *tile.Matrix[F], es *errState, forkJoin bool, from int, afterStep func(k int)) {
	if a.M != a.N {
		panic("core: Cholesky needs a square matrix")
	}
	nt := a.NT
	for k := from; k < nt; k++ {
		k := k
		s.Submit(sched.Task{
			Name:     "potrf",
			Priority: prioPanel(k, nt),
			Reads:    nil,
			Writes:   []sched.Handle{a.Handle(k, k)},
			Fn: timed(panelNs, func() {
				if es.failed() {
					return
				}
				n := a.TileCols(k)
				if err := lapack.Potrf(blas.Lower, n, a.Tile(k, k), a.TileRows(k)); err != nil {
					perr := err.(*lapack.NotPositiveDefiniteError)
					es.set(&lapack.NotPositiveDefiniteError{Index: k*a.NB + perr.Index})
				}
			}),
		})
		if forkJoin {
			s.Wait()
		}
		for i := k + 1; i < a.MT; i++ {
			i := i
			s.Submit(sched.Task{
				Name:     "trsm",
				Priority: prioSolve(k, nt),
				Reads:    []sched.Handle{a.Handle(k, k)},
				Writes:   []sched.Handle{a.Handle(i, k)},
				Fn: timed(solveNs, func() {
					if es.failed() {
						return
					}
					// A[i][k] ← A[i][k]·L[k][k]⁻ᵀ.
					blas.Trsm(blas.Right, blas.Lower, blas.Trans, blas.NonUnit,
						a.TileRows(i), a.TileCols(k), 1,
						a.Tile(k, k), a.TileRows(k), a.Tile(i, k), a.TileRows(i))
				}),
			})
		}
		if forkJoin {
			s.Wait()
		}
		for j := k + 1; j < nt; j++ {
			j := j
			s.Submit(sched.Task{
				Name:     "syrk",
				Priority: prioUpdate(j, nt),
				Reads:    []sched.Handle{a.Handle(j, k)},
				Writes:   []sched.Handle{a.Handle(j, j)},
				Fn: timed(updateNs, func() {
					if es.failed() {
						return
					}
					// A[j][j] -= A[j][k]·A[j][k]ᵀ.
					blas.Syrk(blas.Lower, blas.NoTrans, a.TileCols(j), a.TileCols(k),
						-1, a.Tile(j, k), a.TileRows(j), 1, a.Tile(j, j), a.TileRows(j))
				}),
			})
			for i := j + 1; i < a.MT; i++ {
				i := i
				s.Submit(sched.Task{
					Name:     "gemm",
					Priority: prioUpdate(j, nt),
					Reads:    []sched.Handle{a.Handle(i, k), a.Handle(j, k)},
					Writes:   []sched.Handle{a.Handle(i, j)},
					Fn: timed(updateNs, func() {
						if es.failed() {
							return
						}
						// A[i][j] -= A[i][k]·A[j][k]ᵀ.
						blas.Gemm(blas.NoTrans, blas.Trans,
							a.TileRows(i), a.TileCols(j), a.TileCols(k),
							-1, a.Tile(i, k), a.TileRows(i),
							a.Tile(j, k), a.TileRows(j),
							1, a.Tile(i, j), a.TileRows(i))
					}),
				})
			}
		}
		if forkJoin {
			s.Wait()
		}
		if afterStep != nil {
			afterStep(k)
		}
	}
}

// TrsmLower submits tile tasks solving op(L)·X = B in place, where L is the
// lower-triangular tile factor in A's lower tiles and B is a tiled
// right-hand-side matrix (B.MT == A.NT).
func TrsmLower[F blas.Float](s sched.Scheduler, trans blas.Transpose, a *tile.Matrix[F], b *tile.Matrix[F]) {
	nt := a.NT
	if trans == blas.NoTrans {
		// Forward substitution over tile rows.
		for k := 0; k < nt; k++ {
			k := k
			for j := 0; j < b.NT; j++ {
				j := j
				s.Submit(sched.Task{
					Name:     "trsm",
					Priority: prioSolve(k, nt),
					Reads:    []sched.Handle{a.Handle(k, k)},
					Writes:   []sched.Handle{b.Handle(k, j)},
					Fn: timed(solveNs, func() {
						blas.Trsm(blas.Left, blas.Lower, blas.NoTrans, blas.NonUnit,
							b.TileRows(k), b.TileCols(j), 1,
							a.Tile(k, k), a.TileRows(k), b.Tile(k, j), b.TileRows(k))
					}),
				})
				for i := k + 1; i < nt; i++ {
					i := i
					s.Submit(sched.Task{
						Name:     "gemm",
						Priority: prioUpdate(k, nt),
						Reads:    []sched.Handle{a.Handle(i, k), b.Handle(k, j)},
						Writes:   []sched.Handle{b.Handle(i, j)},
						Fn: timed(updateNs, func() {
							blas.Gemm(blas.NoTrans, blas.NoTrans,
								b.TileRows(i), b.TileCols(j), b.TileRows(k),
								-1, a.Tile(i, k), a.TileRows(i),
								b.Tile(k, j), b.TileRows(k),
								1, b.Tile(i, j), b.TileRows(i))
						}),
					})
				}
			}
		}
		return
	}
	// Lᵀ·X = B: back substitution over tile rows.
	for k := nt - 1; k >= 0; k-- {
		k := k
		for j := 0; j < b.NT; j++ {
			j := j
			s.Submit(sched.Task{
				Name:     "trsm",
				Priority: prioSolve(nt-1-k, nt),
				Reads:    []sched.Handle{a.Handle(k, k)},
				Writes:   []sched.Handle{b.Handle(k, j)},
				Fn: timed(solveNs, func() {
					blas.Trsm(blas.Left, blas.Lower, blas.Trans, blas.NonUnit,
						b.TileRows(k), b.TileCols(j), 1,
						a.Tile(k, k), a.TileRows(k), b.Tile(k, j), b.TileRows(k))
				}),
			})
			for i := 0; i < k; i++ {
				i := i
				s.Submit(sched.Task{
					Name:     "gemm",
					Priority: prioUpdate(nt-1-k, nt),
					Reads:    []sched.Handle{a.Handle(k, i), b.Handle(k, j)},
					Writes:   []sched.Handle{b.Handle(i, j)},
					Fn: timed(updateNs, func() {
						// B[i][j] -= A[k][i]ᵀ·B[k][j] (L[k][i] stored at (k,i)).
						blas.Gemm(blas.Trans, blas.NoTrans,
							b.TileRows(i), b.TileCols(j), b.TileRows(k),
							-1, a.Tile(k, i), a.TileRows(k),
							b.Tile(k, j), b.TileRows(k),
							1, b.Tile(i, j), b.TileRows(i))
					}),
				})
			}
		}
	}
}

// TrsmUpper submits tile tasks solving U·X = B in place, where U is the
// upper-triangular tile factor stored in A's upper tiles (diagonal tiles
// hold U on and above the diagonal).
func TrsmUpper[F blas.Float](s sched.Scheduler, a *tile.Matrix[F], b *tile.Matrix[F]) {
	nt := a.NT
	for k := nt - 1; k >= 0; k-- {
		k := k
		for j := 0; j < b.NT; j++ {
			j := j
			s.Submit(sched.Task{
				Name:     "trsm",
				Priority: prioSolve(nt-1-k, nt),
				Reads:    []sched.Handle{a.Handle(k, k)},
				Writes:   []sched.Handle{b.Handle(k, j)},
				Fn: timed(solveNs, func() {
					// Only the top TileCols(k) rows of B's tile-row k carry
					// the triangular system (they equal the tile size except
					// possibly at the boundary of a tall least-squares B).
					blas.Trsm(blas.Left, blas.Upper, blas.NoTrans, blas.NonUnit,
						a.TileCols(k), b.TileCols(j), 1,
						a.Tile(k, k), a.TileRows(k), b.Tile(k, j), b.TileRows(k))
				}),
			})
			for i := 0; i < k; i++ {
				i := i
				s.Submit(sched.Task{
					Name:     "gemm",
					Priority: prioUpdate(nt-1-k, nt),
					Reads:    []sched.Handle{a.Handle(i, k), b.Handle(k, j)},
					Writes:   []sched.Handle{b.Handle(i, j)},
					Fn: timed(updateNs, func() {
						blas.Gemm(blas.NoTrans, blas.NoTrans,
							a.TileCols(i), b.TileCols(j), a.TileCols(k),
							-1, a.Tile(i, k), a.TileRows(i),
							b.Tile(k, j), b.TileRows(k),
							1, b.Tile(i, j), b.TileRows(i))
					}),
				})
			}
		}
	}
}

// Posv factors the SPD tiled matrix A in place and solves A·X = B in place,
// all in one dataflow graph with no intermediate barrier.
func Posv[F blas.Float](s sched.Scheduler, a, b *tile.Matrix[F]) error {
	es := &errState{}
	submitCholesky(s, a, es, false)
	TrsmLower(s, blas.NoTrans, a, b)
	TrsmLower(s, blas.Trans, a, b)
	return finishErr(es, s)
}
