package core

import (
	"exadla/internal/blas"
	"exadla/internal/lapack"
	"exadla/internal/sched"
	"exadla/internal/tile"
)

// QRTree computes the tile QR factorization with a binary reduction tree
// per panel (the CAQR elimination order): every tile of the panel is
// QR-factored locally, then the triangular factors are merged pairwise up
// a log₂-depth tree. Compared to the flat order, the panel's critical path
// drops from Θ(MT) to Θ(log MT) — the communication-avoiding trade the
// keynote advocates for tall matrices — at the cost of more reflector
// storage and slightly more flops in the merge kernels.
//
// The returned factors record the elimination plan so ApplyQT replays the
// right order for either variant.
func QRTree[F blas.Float](s sched.Scheduler, a *tile.Matrix[F]) *QRFactors[F] {
	f := &QRFactors[F]{
		A:    a,
		T:    tile.New[F](a.MT*a.NB, a.NT*a.NB, a.NB),
		T2:   tile.New[F](a.MT*a.NB, a.NT*a.NB, a.NB),
		tree: true,
	}
	submitQRTree(s, f)
	s.Wait()
	return f
}

// GelsTree is Gels using the tree elimination order.
func GelsTree[F blas.Float](s sched.Scheduler, a, b *tile.Matrix[F]) *QRFactors[F] {
	if a.M < a.N {
		panic("core: GelsTree requires M ≥ N")
	}
	f := &QRFactors[F]{
		A:    a,
		T:    tile.New[F](a.MT*a.NB, a.NT*a.NB, a.NB),
		T2:   tile.New[F](a.MT*a.NB, a.NT*a.NB, a.NB),
		tree: true,
	}
	submitQRTree(s, f)
	ApplyQT(s, f, b)
	TrsmUpper(s, a, b)
	s.Wait()
	return f
}

// treePairs enumerates the binary-tree merge schedule over rows k..MT-1:
// rounds of (i1, i2) pairs where i2's triangle is folded into i1's.
func treePairs(k, mt int) [][2]int {
	var pairs [][2]int
	for dist := 1; k+dist < mt; dist *= 2 {
		for idx := k; idx+dist < mt; idx += 2 * dist {
			pairs = append(pairs, [2]int{idx, idx + dist})
		}
	}
	return pairs
}

func submitQRTree[F blas.Float](s sched.Scheduler, f *QRFactors[F]) {
	a, t, t2 := f.A, f.T, f.T2
	kt := min(a.MT, a.NT)
	for k := 0; k < kt; k++ {
		k := k
		// Local QR of every panel tile, and local Qᵀ applied to its row.
		for i := k; i < a.MT; i++ {
			i := i
			s.Submit(sched.Task{
				Name:     "geqrt",
				Priority: prioPanel(k, kt),
				Writes:   []sched.Handle{a.Handle(i, k), t.Handle(i, k)},
				Fn: func() {
					geqrt(a.TileRows(i), a.TileCols(k), a.Tile(i, k), a.TileRows(i), t.Tile(i, k), t.TileRows(i))
				},
			})
			for j := k + 1; j < a.NT; j++ {
				j := j
				s.Submit(sched.Task{
					Name:     "unmqr",
					Priority: prioSolve(j, kt),
					Reads:    []sched.Handle{a.Handle(i, k), t.Handle(i, k)},
					Writes:   []sched.Handle{a.Handle(i, j)},
					Fn: func() {
						unmqr(a.TileRows(i), a.TileCols(j), min(a.TileRows(i), a.TileCols(k)),
							a.Tile(i, k), a.TileRows(i), t.Tile(i, k), t.TileRows(i),
							a.Tile(i, j), a.TileRows(i))
					},
				})
			}
		}
		// Pairwise triangle merges up the tree. The TTQRT/TTMQR kernels
		// operate only on the (trapezoidal) R region in the second tile's
		// upper triangle — its strictly-lower storage still holds the
		// local GEQRT reflectors and must survive for ApplyQT.
		for _, p := range treePairs(k, a.MT) {
			i1, i2 := p[0], p[1]
			s.Submit(sched.Task{
				Name:     "ttqrt",
				Priority: prioPanel(k, kt),
				Writes:   []sched.Handle{a.Handle(i1, k), a.Handle(i2, k), t2.Handle(i2, k)},
				Fn: func() {
					ttqrt(a.TileCols(k), min(a.TileRows(i2), a.TileCols(k)),
						a.Tile(i1, k), a.TileRows(i1),
						a.Tile(i2, k), a.TileRows(i2),
						t2.Tile(i2, k), t2.TileRows(i2))
				},
			})
			for j := k + 1; j < a.NT; j++ {
				j := j
				s.Submit(sched.Task{
					Name:     "ttmqr",
					Priority: prioUpdate(j, kt),
					Reads:    []sched.Handle{a.Handle(i2, k), t2.Handle(i2, k)},
					Writes:   []sched.Handle{a.Handle(i1, j), a.Handle(i2, j)},
					Fn: func() {
						ttmqr(blas.Trans, a.TileCols(k), min(a.TileRows(i2), a.TileCols(k)), a.TileCols(j),
							a.Tile(i2, k), a.TileRows(i2),
							t2.Tile(i2, k), t2.TileRows(i2),
							a.Tile(i1, j), a.TileRows(i1),
							a.Tile(i2, j), a.TileRows(i2))
					},
				})
			}
		}
	}
}

// applyQTTree replays the tree factorization's transforms on B.
func applyQTTree[F blas.Float](s sched.Scheduler, f *QRFactors[F], b *tile.Matrix[F]) {
	a, t, t2 := f.A, f.T, f.T2
	kt := min(a.MT, a.NT)
	for k := 0; k < kt; k++ {
		k := k
		for i := k; i < a.MT; i++ {
			i := i
			for j := 0; j < b.NT; j++ {
				j := j
				s.Submit(sched.Task{
					Name:     "unmqr",
					Priority: prioSolve(k, kt),
					Reads:    []sched.Handle{a.Handle(i, k), t.Handle(i, k)},
					Writes:   []sched.Handle{b.Handle(i, j)},
					Fn: func() {
						unmqr(b.TileRows(i), b.TileCols(j), min(a.TileRows(i), a.TileCols(k)),
							a.Tile(i, k), a.TileRows(i), t.Tile(i, k), t.TileRows(i),
							b.Tile(i, j), b.TileRows(i))
					},
				})
			}
		}
		for _, p := range treePairs(k, a.MT) {
			i1, i2 := p[0], p[1]
			for j := 0; j < b.NT; j++ {
				j := j
				s.Submit(sched.Task{
					Name:     "ttmqr",
					Priority: prioUpdate(k, kt),
					Reads:    []sched.Handle{a.Handle(i2, k), t2.Handle(i2, k)},
					Writes:   []sched.Handle{b.Handle(i1, j), b.Handle(i2, j)},
					Fn: func() {
						ttmqr(blas.Trans, a.TileCols(k), min(a.TileRows(i2), a.TileCols(k)), b.TileCols(j),
							a.Tile(i2, k), a.TileRows(i2),
							t2.Tile(i2, k), t2.TileRows(i2),
							b.Tile(i1, j), b.TileRows(i1),
							b.Tile(i2, j), b.TileRows(i2))
					},
				})
			}
		}
	}
}

// ttqrt computes the structured QR of two stacked triangular factors: R1
// (n×n upper, in the top of tile r1) and R2 (upper trapezoid with m2 ≤ n
// triangle rows, in the upper region of tile r2). The reflector zeroing
// R2's column j has an implicit 1 at R1's row j and a dense tail only in
// R2's rows 0..min(j, m2-1), so the kernel reads and writes nothing below
// R2's diagonal — the local GEQRT reflectors stored there are preserved.
// On return R1 holds the merged R, R2's upper region holds the merge
// reflector tails, and t holds the n×n block-reflector factor.
func ttqrt[F blas.Float](n, m2 int, r1 []F, ldr1 int, r2 []F, ldr2 int, t []F, ldt int) {
	w := make([]F, n)
	for j := 0; j < n; j++ {
		lenj := min(j+1, m2)
		beta, tau := lapack.Larfg(1+lenj, r1[j+j*ldr1], r2[j*ldr2:j*ldr2+lenj], 1)
		r1[j+j*ldr1] = beta
		v2 := r2[j*ldr2 : j*ldr2+lenj]
		if j+1 < n && tau != 0 {
			nc := n - j - 1
			// w = R1[j, j+1:] + V2ᵀ·R2[0:lenj, j+1:].
			for c := 0; c < nc; c++ {
				w[c] = r1[j+(j+1+c)*ldr1]
			}
			blas.Gemv(blas.Trans, lenj, nc, 1, r2[(j+1)*ldr2:], ldr2, v2, 1, 1, w[:nc], 1)
			for c := 0; c < nc; c++ {
				r1[j+(j+1+c)*ldr1] -= tau * w[c]
			}
			blas.Ger(lenj, nc, -tau, v2, 1, w[:nc], 1, r2[(j+1)*ldr2:], ldr2)
		}
		// T column j: T[0:j, j] = −tau·T[0:j,0:j]·(V2[:,0:j]ᵀ·v2_j); column
		// c of V2 has min(c+1, m2) stored entries.
		for c := 0; c < j; c++ {
			lc := min(min(c+1, m2), lenj)
			var s F
			for r := 0; r < lc; r++ {
				s += r2[r+c*ldr2] * v2[r]
			}
			t[c+j*ldt] = -tau * s
		}
		if j > 0 {
			blas.Trmv(blas.Upper, blas.NoTrans, blas.NonUnit, j, t, ldt, t[j*ldt:], 1)
		}
		t[j+j*ldt] = tau
	}
}

// ttmqr applies a ttqrt block reflector to the stacked pair [C1; C2]: C1's
// top n rows and C2's top m2 rows participate; everything else — including
// C2's rows below the trapezoid — is untouched. trans selects Qᵀ or Q.
func ttmqr[F blas.Float](trans blas.Transpose, n, m2, nc int, r2 []F, ldr2 int, t []F, ldt int, c1 []F, ldc1 int, c2 []F, ldc2 int) {
	if n == 0 || nc == 0 {
		return
	}
	// W = C1[0:n] + V2ᵀ·C2[0:m2], accumulating row j of W from the stored
	// tail of reflector j (rows 0..min(j, m2-1) of R2's column j).
	w := make([]F, n*nc)
	lapack.Lacpy(lapack.General, n, nc, c1, ldc1, w, n)
	for j := 0; j < n; j++ {
		lenj := min(j+1, m2)
		blas.Gemv(blas.Trans, lenj, nc, 1, c2, ldc2, r2[j*ldr2:j*ldr2+lenj], 1, 1, w[j:], n)
	}
	tt := blas.NoTrans
	if trans == blas.Trans {
		tt = blas.Trans
	}
	blas.Trmm(blas.Left, blas.Upper, tt, blas.NonUnit, n, nc, 1, t, ldt, w, n)
	// C1 -= W; C2 -= V2·W.
	for col := 0; col < nc; col++ {
		for i := 0; i < n; i++ {
			c1[i+col*ldc1] -= w[i+col*n]
		}
	}
	for j := 0; j < n; j++ {
		lenj := min(j+1, m2)
		blas.Ger(lenj, nc, -1, r2[j*ldr2:j*ldr2+lenj], 1, w[j:], n, c2, ldc2)
	}
}

// TreePairsForTest exposes the merge schedule for structural tests.
func TreePairsForTest(k, mt int) [][2]int { return treePairs(k, mt) }
