package rnd

import (
	"math"
	"math/rand"
	"testing"

	"exadla/internal/blas"
	"exadla/internal/lapack"
	"exadla/internal/matgen"
)

func TestFHTOrthonormal(t *testing.T) {
	// The normalized transform preserves the 2-norm exactly (up to
	// rounding) and is an involution.
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 8, 64, 256} {
		buf := make([]float64, n)
		for i := range buf {
			buf[i] = rng.NormFloat64()
		}
		orig := append([]float64(nil), buf...)
		before := blas.Nrm2(n, buf, 1)
		fht(buf)
		after := blas.Nrm2(n, buf, 1)
		if math.Abs(before-after) > 1e-12*(1+before) {
			t.Fatalf("n=%d: norm %v → %v", n, before, after)
		}
		fht(buf)
		for i := range buf {
			if math.Abs(buf[i]-orig[i]) > 1e-12*(1+math.Abs(orig[i])) {
				t.Fatalf("n=%d: H·H ≠ I at %d", n, i)
			}
		}
	}
}

func TestFHTMatchesDefinition(t *testing.T) {
	// n=4 normalized Hadamard applied to e0 gives (1/2)·(1,1,1,1).
	buf := []float64{1, 0, 0, 0}
	fht(buf)
	for _, v := range buf {
		if math.Abs(v-0.5) > 1e-15 {
			t.Fatalf("fht(e0) = %v", buf)
		}
	}
}

func TestSRHTEmbedding(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, n, s := 3000, 8, 96
	a := matgen.Dense[float64](rng, m, n)
	tr := NewSRHT(rng, s, m)
	sa := tr.ApplyMatrix(n, a, m)
	for trial := 0; trial < 10; trial++ {
		x := matgen.Dense[float64](rng, n, 1)
		ax := make([]float64, m)
		blas.Gemv(blas.NoTrans, m, n, 1, a, m, x, 1, 0, ax, 1)
		sax := make([]float64, s)
		blas.Gemv(blas.NoTrans, s, n, 1, sa, s, x, 1, 0, sax, 1)
		ratio := blas.Nrm2(s, sax, 1) / blas.Nrm2(m, ax, 1)
		if ratio < 0.4 || ratio > 1.6 {
			t.Fatalf("trial %d: SRHT embedding ratio %g", trial, ratio)
		}
	}
}

func TestSRHTVectorMatchesMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, s := 100, 20
	tr := NewSRHT(rng, s, m)
	b := matgen.Dense[float64](rng, m, 1)
	v := tr.ApplyVector(b)
	mOut := tr.ApplyMatrix(1, b, m)
	for i := range v {
		if v[i] != mOut[i] {
			t.Fatal("vector and matrix application disagree")
		}
	}
}

func TestSolveLSFastMatchesQR(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m, n := 2000, 15
	a := matgen.WithCond[float64](rng, m, n, 1e5)
	b := matgen.Dense[float64](rng, m, 1)
	x, stats, err := SolveLSFast(rng, m, n, a, m, b, 4.0, 1e-14, 300)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Converged {
		t.Fatalf("not converged after %d iterations", stats.LSQRIterations)
	}
	aCopy := append([]float64(nil), a...)
	bCopy := append([]float64(nil), b...)
	if err := lapack.Gels(m, n, aCopy, m, bCopy); err != nil {
		t.Fatal(err)
	}
	rFast := lsResidualInternal(m, n, a, b, x)
	rQR := lsResidualInternal(m, n, a, b, bCopy[:n])
	if rFast > rQR*(1+1e-6) {
		t.Errorf("SRHT residual %g exceeds QR residual %g", rFast, rQR)
	}
}

func lsResidualInternal(m, n int, a, b, x []float64) float64 {
	r := append([]float64(nil), b...)
	blas.Gemv(blas.NoTrans, m, n, -1, a, m, x, 1, 1, r, 1)
	return blas.Nrm2(m, r, 1)
}
