package rnd

import (
	"math"
	"math/rand"

	"exadla/internal/blas"
	"exadla/internal/lapack"
)

// SRHT is a subsampled randomized Hadamard transform: S = √(m̂/s)·P·H·D
// where D is a random ±1 diagonal, H the (normalized) Walsh–Hadamard
// transform on the zero-padded power-of-two length m̂, and P samples s
// rows. Applying it costs O(m̂·log m̂) per column instead of the O(s·m) of
// a dense Gaussian sketch — the fast mixing Blendenpik relies on to beat
// direct QR.
type SRHT struct {
	m, s, mPad int
	signs      []float64 // ±1, length m
	rows       []int     // s sampled indices into [0, mPad)
	scale      float64
}

// NewSRHT draws a transform mapping length-m vectors to length-s sketches.
func NewSRHT(rng *rand.Rand, s, m int) *SRHT {
	mPad := 1
	for mPad < m {
		mPad <<= 1
	}
	t := &SRHT{m: m, s: s, mPad: mPad}
	t.signs = make([]float64, m)
	for i := range t.signs {
		if rng.Intn(2) == 0 {
			t.signs[i] = 1
		} else {
			t.signs[i] = -1
		}
	}
	t.rows = make([]int, s)
	for i := range t.rows {
		t.rows[i] = rng.Intn(mPad)
	}
	// H is normalized to be orthonormal (1/√m̂ per butterfly pass total);
	// sampling s of m̂ rows rescales by √(m̂/s).
	t.scale = math.Sqrt(float64(mPad) / float64(s))
	return t
}

// fht performs the in-place Walsh–Hadamard butterfly on a power-of-two
// length buffer, normalized so the transform is orthonormal.
func fht(buf []float64) {
	n := len(buf)
	for h := 1; h < n; h <<= 1 {
		for i := 0; i < n; i += h << 1 {
			for j := i; j < i+h; j++ {
				x, y := buf[j], buf[j+h]
				buf[j], buf[j+h] = x+y, x-y
			}
		}
	}
	inv := 1 / math.Sqrt(float64(n))
	for i := range buf {
		buf[i] *= inv
	}
}

// ApplyVector computes S·b for a length-m vector.
func (t *SRHT) ApplyVector(b []float64) []float64 {
	buf := make([]float64, t.mPad)
	for i := 0; i < t.m; i++ {
		buf[i] = t.signs[i] * b[i]
	}
	fht(buf)
	out := make([]float64, t.s)
	for i, r := range t.rows {
		out[i] = t.scale * buf[r]
	}
	return out
}

// ApplyMatrix computes S·A for an m×n column-major matrix, returning the
// s×n sketch.
func (t *SRHT) ApplyMatrix(n int, a []float64, lda int) []float64 {
	out := make([]float64, t.s*n)
	buf := make([]float64, t.mPad)
	for j := 0; j < n; j++ {
		for i := range buf {
			buf[i] = 0
		}
		col := a[j*lda : j*lda+t.m]
		for i, v := range col {
			buf[i] = t.signs[i] * v
		}
		fht(buf)
		for i, r := range t.rows {
			out[i+j*t.s] = t.scale * buf[r]
		}
	}
	return out
}

// SolveLSFast is SolveLS with the SRHT sketch: the full Blendenpik recipe.
// Cost: O(m·n·log m) sketch + O(s·n²) QR + O(iterations·m·n) LSQR, versus
// O(m·n²) for direct QR — the crossover the E8 experiment measures.
func SolveLSFast(rng *rand.Rand, m, n int, a []float64, lda int, b []float64, sketchFactor float64, atol float64, maxIter int) ([]float64, SolveStats, error) {
	s := sketchRows(n, m, sketchFactor)
	t := NewSRHT(rng, s, m)
	sa := t.ApplyMatrix(n, a, lda)
	tau := make([]float64, n)
	lapack.Geqrf(s, n, sa, s, tau)
	for i := 0; i < n; i++ {
		if sa[i+i*s] == 0 {
			return nil, SolveStats{SketchRows: s}, errRankDeficient(i)
		}
	}
	op := &precondOp{m: m, n: n, a: a, lda: lda, r: sa, ldr: s}
	res := LSQR(op, b, atol, maxIter)
	x := append([]float64(nil), res.X...)
	blas.Trsv(blas.Upper, blas.NoTrans, blas.NonUnit, n, sa, s, x, 1)
	return x, SolveStats{SketchRows: s, LSQRIterations: res.Iterations, Converged: res.Converged}, nil
}

type rankDeficientError int

func errRankDeficient(col int) error { return rankDeficientError(col) }

func (e rankDeficientError) Error() string {
	return "rnd: sketched matrix rank deficient"
}
