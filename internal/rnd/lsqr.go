// Package rnd implements the randomized numerical linear algebra the
// keynote points to as a "new rule": Gaussian sketching, sketch-and-solve
// and sketch-to-precondition (Blendenpik-style) least squares, and
// randomized condition estimation — plus the LSQR iterative solver they
// precondition.
package rnd

import (
	"math"

	"exadla/internal/blas"
)

// Operator is a matrix presented as the pair of products LSQR needs.
type Operator interface {
	// Dims returns the operator's row and column counts.
	Dims() (m, n int)
	// Apply computes y ← A·x.
	Apply(x, y []float64)
	// ApplyT computes y ← Aᵀ·x.
	ApplyT(x, y []float64)
}

// DenseOp adapts a dense column-major matrix to Operator.
type DenseOp struct {
	M, N int
	A    []float64
	LDA  int
}

// Dims implements Operator.
func (d *DenseOp) Dims() (int, int) { return d.M, d.N }

// Apply implements Operator.
func (d *DenseOp) Apply(x, y []float64) {
	blas.Gemv(blas.NoTrans, d.M, d.N, 1, d.A, d.LDA, x, 1, 0, y, 1)
}

// ApplyT implements Operator.
func (d *DenseOp) ApplyT(x, y []float64) {
	blas.Gemv(blas.Trans, d.M, d.N, 1, d.A, d.LDA, x, 1, 0, y, 1)
}

// LSQRResult reports the outcome of an LSQR run.
type LSQRResult struct {
	// X is the solution estimate.
	X []float64
	// Iterations is the number of bidiagonalization steps taken.
	Iterations int
	// Converged reports whether a stopping test fired before the
	// iteration cap.
	Converged bool
	// ResidualNorm estimates ‖b − A·x‖.
	ResidualNorm float64
}

// LSQR solves min‖A·x − b‖₂ with the Paige–Saunders bidiagonalization
// algorithm. atol is the relative tolerance on the normal-equations
// residual ‖Aᵀr‖/(‖A‖‖r‖); typical values 1e-12 for float64 data.
func LSQR(op Operator, b []float64, atol float64, maxIter int) LSQRResult {
	m, n := op.Dims()
	if maxIter <= 0 {
		maxIter = 2 * n
	}
	x := make([]float64, n)
	u := append([]float64(nil), b[:m]...)
	beta := blas.Nrm2(m, u, 1)
	if beta == 0 {
		return LSQRResult{X: x, Converged: true}
	}
	blas.Scal(m, 1/beta, u, 1)
	v := make([]float64, n)
	op.ApplyT(u, v)
	alpha := blas.Nrm2(n, v, 1)
	if alpha == 0 {
		return LSQRResult{X: x, Converged: true, ResidualNorm: beta}
	}
	blas.Scal(n, 1/alpha, v, 1)
	w := append([]float64(nil), v...)

	phibar, rhobar := beta, alpha
	anorm := 0.0
	tmpM := make([]float64, m)
	tmpN := make([]float64, n)
	res := LSQRResult{X: x}
	for it := 1; it <= maxIter; it++ {
		res.Iterations = it
		// u ← A·v − α·u, reorthogonalize the norm.
		op.Apply(v, tmpM)
		for i := range u {
			u[i] = tmpM[i] - alpha*u[i]
		}
		beta = blas.Nrm2(m, u, 1)
		if beta > 0 {
			blas.Scal(m, 1/beta, u, 1)
		}
		// v ← Aᵀ·u − β·v.
		op.ApplyT(u, tmpN)
		for i := range v {
			v[i] = tmpN[i] - beta*v[i]
		}
		alpha = blas.Nrm2(n, v, 1)
		if alpha > 0 {
			blas.Scal(n, 1/alpha, v, 1)
		}
		anorm = math.Hypot(anorm, math.Hypot(alpha, beta))

		// Givens rotation eliminating beta from the bidiagonal system.
		rho := math.Hypot(rhobar, beta)
		c, s := rhobar/rho, beta/rho
		theta := s * alpha
		rhobar = -c * alpha
		phi := c * phibar
		phibar = s * phibar

		// Update x and the search direction w.
		t1, t2 := phi/rho, -theta/rho
		blas.Axpy(n, t1, w, 1, x, 1)
		for i := range w {
			w[i] = v[i] + t2*w[i]
		}

		res.ResidualNorm = phibar
		// ‖Aᵀr‖ = phibar·alpha·|c|; stop when it is small relative to
		// ‖A‖·‖r‖.
		atr := phibar * alpha * math.Abs(c)
		if anorm > 0 && phibar > 0 {
			if atr/(anorm*phibar) <= atol {
				res.Converged = true
				return res
			}
		} else {
			res.Converged = true
			return res
		}
	}
	return res
}
