package rnd

import (
	"fmt"
	"math"
	"math/rand"

	"exadla/internal/blas"
	"exadla/internal/lapack"
)

// GaussianSketch returns an s×m matrix with i.i.d. N(0, 1/s) entries — a
// subspace embedding for s ≳ 2n. (The Blendenpik paper uses a randomized
// Hadamard transform for speed; a Gaussian sketch has identical embedding
// behaviour at a higher constant, which is the substitution this
// reproduction documents.)
func GaussianSketch(rng *rand.Rand, s, m int) []float64 {
	sk := make([]float64, s*m)
	scale := 1 / math.Sqrt(float64(s))
	for i := range sk {
		sk[i] = rng.NormFloat64() * scale
	}
	return sk
}

// SolveStats reports how a randomized least-squares solve went.
type SolveStats struct {
	// SketchRows is the sketch dimension used.
	SketchRows int
	// LSQRIterations counts preconditioned LSQR steps (0 for pure
	// sketch-and-solve).
	LSQRIterations int
	// Converged reports LSQR convergence.
	Converged bool
}

// SketchAndSolve computes the cheap, low-accuracy estimator: the exact
// solution of the sketched problem min‖S(A·x − b)‖. Error is O(ε_embed)
// rather than driven to machine precision — the fast-but-rough end of the
// randomized trade-off.
func SketchAndSolve(rng *rand.Rand, m, n int, a []float64, lda int, b []float64, sketchFactor float64) ([]float64, SolveStats, error) {
	s := sketchRows(n, m, sketchFactor)
	sk := GaussianSketch(rng, s, m)
	sa := make([]float64, s*n)
	blas.Gemm(blas.NoTrans, blas.NoTrans, s, n, m, 1, sk, s, a, lda, 0, sa, s)
	sb := make([]float64, s)
	blas.Gemv(blas.NoTrans, s, m, 1, sk, s, b, 1, 0, sb, 1)
	if err := lapack.Gels(s, n, sa, s, sb); err != nil {
		return nil, SolveStats{SketchRows: s}, fmt.Errorf("rnd: sketched system rank deficient: %w", err)
	}
	return sb[:n], SolveStats{SketchRows: s, Converged: true}, nil
}

// SolveLS solves min‖A·x − b‖ to full accuracy with the
// sketch-to-precondition scheme: QR-factor the sketched matrix S·A, use its
// R as a right preconditioner, and run LSQR on A·R⁻¹ — which converges in
// O(log(1/ε)) iterations independent of A's conditioning.
func SolveLS(rng *rand.Rand, m, n int, a []float64, lda int, b []float64, sketchFactor float64, atol float64, maxIter int) ([]float64, SolveStats, error) {
	s := sketchRows(n, m, sketchFactor)
	sk := GaussianSketch(rng, s, m)
	sa := make([]float64, s*n)
	blas.Gemm(blas.NoTrans, blas.NoTrans, s, n, m, 1, sk, s, a, lda, 0, sa, s)
	tau := make([]float64, n)
	lapack.Geqrf(s, n, sa, s, tau)
	// R = upper triangle of sa.
	for i := 0; i < n; i++ {
		if sa[i+i*s] == 0 {
			return nil, SolveStats{SketchRows: s}, fmt.Errorf("rnd: sketched matrix rank deficient at column %d", i)
		}
	}
	op := &precondOp{m: m, n: n, a: a, lda: lda, r: sa, ldr: s}
	res := LSQR(op, b, atol, maxIter)
	// x = R⁻¹·z.
	x := append([]float64(nil), res.X...)
	blas.Trsv(blas.Upper, blas.NoTrans, blas.NonUnit, n, sa, s, x, 1)
	return x, SolveStats{SketchRows: s, LSQRIterations: res.Iterations, Converged: res.Converged}, nil
}

// precondOp presents A·R⁻¹ to LSQR.
type precondOp struct {
	m, n int
	a    []float64
	lda  int
	r    []float64
	ldr  int
	bufN []float64
}

func (p *precondOp) Dims() (int, int) { return p.m, p.n }

func (p *precondOp) Apply(x, y []float64) {
	if p.bufN == nil {
		p.bufN = make([]float64, p.n)
	}
	copy(p.bufN, x)
	blas.Trsv(blas.Upper, blas.NoTrans, blas.NonUnit, p.n, p.r, p.ldr, p.bufN, 1)
	blas.Gemv(blas.NoTrans, p.m, p.n, 1, p.a, p.lda, p.bufN, 1, 0, y, 1)
}

func (p *precondOp) ApplyT(x, y []float64) {
	blas.Gemv(blas.Trans, p.m, p.n, 1, p.a, p.lda, x, 1, 0, y, 1)
	blas.Trsv(blas.Upper, blas.Trans, blas.NonUnit, p.n, p.r, p.ldr, y, 1)
}

func sketchRows(n, m int, factor float64) int {
	if factor < 1.1 {
		factor = 2
	}
	s := int(math.Ceil(factor * float64(n)))
	if s > m {
		s = m
	}
	if s < n {
		s = n
	}
	return s
}

// CondEst2 estimates the 2-norm condition number of a full-rank m×n matrix
// (m ≥ n) by power iteration on AᵀA for σ²max and inverse iteration through
// a QR factorization for σ²min. iters ≈ 30 gives a couple of digits, all
// randomized algorithms need.
func CondEst2(rng *rand.Rand, m, n int, a []float64, lda int, iters int) float64 {
	if iters <= 0 {
		iters = 30
	}
	// σmax via power iteration.
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	tmp := make([]float64, m)
	var smax float64
	for it := 0; it < iters; it++ {
		blas.Gemv(blas.NoTrans, m, n, 1, a, lda, v, 1, 0, tmp, 1)
		blas.Gemv(blas.Trans, m, n, 1, a, lda, tmp, 1, 0, v, 1)
		nrm := blas.Nrm2(n, v, 1)
		if nrm == 0 {
			return math.Inf(1)
		}
		smax = math.Sqrt(nrm)
		blas.Scal(n, 1/nrm, v, 1)
	}
	// σmin via inverse iteration with AᵀA = RᵀR.
	qr := make([]float64, m*n)
	lapack.Lacpy(lapack.General, m, n, a, lda, qr, m)
	tau := make([]float64, n)
	lapack.Geqrf(m, n, qr, m, tau)
	for i := 0; i < n; i++ {
		if qr[i+i*m] == 0 {
			return math.Inf(1)
		}
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	var sminInv float64
	for it := 0; it < iters; it++ {
		// Solve RᵀR z = w.
		blas.Trsv(blas.Upper, blas.Trans, blas.NonUnit, n, qr, m, w, 1)
		blas.Trsv(blas.Upper, blas.NoTrans, blas.NonUnit, n, qr, m, w, 1)
		nrm := blas.Nrm2(n, w, 1)
		if nrm == 0 {
			break
		}
		sminInv = math.Sqrt(nrm)
		blas.Scal(n, 1/nrm, w, 1)
	}
	if sminInv == 0 {
		return math.Inf(1)
	}
	return smax * sminInv
}
