package rnd_test

import (
	"math"
	"math/rand"
	"testing"

	"exadla/internal/blas"
	"exadla/internal/lapack"
	"exadla/internal/matgen"
	"exadla/internal/rnd"
)

func lsResidual(m, n int, a []float64, b, x []float64) float64 {
	r := append([]float64(nil), b...)
	blas.Gemv(blas.NoTrans, m, n, -1, a, m, x, 1, 1, r, 1)
	return blas.Nrm2(m, r, 1)
}

func TestLSQRConsistentSystem(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m, n := 200, 30
	a := matgen.Dense[float64](rng, m, n)
	xTrue := matgen.Dense[float64](rng, n, 1)
	b := make([]float64, m)
	blas.Gemv(blas.NoTrans, m, n, 1, a, m, xTrue, 1, 0, b, 1)
	res := rnd.LSQR(&rnd.DenseOp{M: m, N: n, A: a, LDA: m}, b, 1e-13, 500)
	if !res.Converged {
		t.Error("LSQR did not converge")
	}
	for i := range res.X {
		if math.Abs(res.X[i]-xTrue[i]) > 1e-8 {
			t.Fatalf("x[%d] = %v want %v", i, res.X[i], xTrue[i])
		}
	}
}

func TestLSQRMatchesQRSolution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, n := 150, 20
	a := matgen.Dense[float64](rng, m, n)
	b := matgen.Dense[float64](rng, m, 1)
	res := rnd.LSQR(&rnd.DenseOp{M: m, N: n, A: a, LDA: m}, b, 1e-13, 1000)
	aCopy := append([]float64(nil), a...)
	bCopy := append([]float64(nil), b...)
	if err := lapack.Gels(m, n, aCopy, m, bCopy); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if math.Abs(res.X[i]-bCopy[i]) > 1e-7*(1+math.Abs(bCopy[i])) {
			t.Fatalf("x[%d] = %v, QR %v", i, res.X[i], bCopy[i])
		}
	}
}

func TestLSQRZeroRHS(t *testing.T) {
	a := matgen.Identity[float64](5)
	b := make([]float64, 5)
	res := rnd.LSQR(&rnd.DenseOp{M: 5, N: 5, A: a, LDA: 5}, b, 1e-12, 10)
	if !res.Converged {
		t.Error("zero RHS should converge immediately")
	}
	for _, v := range res.X {
		if v != 0 {
			t.Error("nonzero solution for zero RHS")
		}
	}
}

func TestSolveLSMatchesQR(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, n := 400, 25
	a := matgen.WithCond[float64](rng, m, n, 1e6) // ill-conditioned on purpose
	b := matgen.Dense[float64](rng, m, 1)
	x, stats, err := rnd.SolveLS(rng, m, n, a, m, b, 2.0, 1e-14, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Converged {
		t.Error("preconditioned LSQR did not converge")
	}
	aCopy := append([]float64(nil), a...)
	bCopy := append([]float64(nil), b...)
	if err := lapack.Gels(m, n, aCopy, m, bCopy); err != nil {
		t.Fatal(err)
	}
	rRand := lsResidual(m, n, a, b, x)
	rQR := lsResidual(m, n, a, b, bCopy[:n])
	if rRand > rQR*(1+1e-6) {
		t.Errorf("randomized residual %g exceeds QR residual %g", rRand, rQR)
	}
}

func TestSolveLSIterationCountIsSmall(t *testing.T) {
	// The headline property of sketch-to-precondition: iteration count is
	// essentially independent of conditioning.
	rng := rand.New(rand.NewSource(4))
	m, n := 500, 20
	var iters []int
	for _, cond := range []float64{1e1, 1e8} {
		a := matgen.WithCond[float64](rng, m, n, cond)
		b := matgen.Dense[float64](rng, m, 1)
		_, stats, err := rnd.SolveLS(rng, m, n, a, m, b, 3.0, 1e-12, 500)
		if err != nil {
			t.Fatal(err)
		}
		if !stats.Converged {
			t.Fatalf("cond=%g: not converged", cond)
		}
		iters = append(iters, stats.LSQRIterations)
	}
	if iters[1] > 5*iters[0]+20 {
		t.Errorf("iterations blew up with conditioning: %v", iters)
	}
}

func TestSketchAndSolveRoughAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, n := 600, 15
	a := matgen.Dense[float64](rng, m, n)
	xTrue := matgen.Dense[float64](rng, n, 1)
	b := make([]float64, m)
	blas.Gemv(blas.NoTrans, m, n, 1, a, m, xTrue, 1, 0, b, 1)
	// Add noise so the LS problem has a nonzero residual.
	for i := range b {
		b[i] += 0.01 * rng.NormFloat64()
	}
	x, _, err := rnd.SketchAndSolve(rng, m, n, a, m, b, 4.0)
	if err != nil {
		t.Fatal(err)
	}
	// Sketch-and-solve must land in the right neighbourhood (its residual
	// within a modest factor of optimal).
	aCopy := append([]float64(nil), a...)
	bCopy := append([]float64(nil), b...)
	if err := lapack.Gels(m, n, aCopy, m, bCopy); err != nil {
		t.Fatal(err)
	}
	rSketch := lsResidual(m, n, a, b, x)
	rOpt := lsResidual(m, n, a, b, bCopy[:n])
	if rSketch > 2*rOpt {
		t.Errorf("sketch-and-solve residual %g ≫ optimal %g", rSketch, rOpt)
	}
}

func TestCondEst2(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, cond := range []float64{1, 100, 1e5} {
		m, n := 200, 40
		a := matgen.WithCond[float64](rng, m, n, cond)
		est := rnd.CondEst2(rng, m, n, a, m, 50)
		if est < cond/10 || est > cond*10 {
			t.Errorf("cond %g estimated as %g", cond, est)
		}
	}
}

func TestCondEst2Singular(t *testing.T) {
	m, n := 20, 5
	a := make([]float64, m*n)
	rng := rand.New(rand.NewSource(7))
	if est := rnd.CondEst2(rng, m, n, a, m, 10); !math.IsInf(est, 1) {
		t.Errorf("singular matrix estimated cond %g, want +Inf", est)
	}
}

func TestGaussianSketchEmbedding(t *testing.T) {
	// A (2n)-row sketch must approximately preserve norms of vectors in
	// the column space: ‖S·A·x‖ ≈ ‖A·x‖ within ~50%.
	rng := rand.New(rand.NewSource(8))
	m, n, s := 2000, 10, 80
	a := matgen.Dense[float64](rng, m, n)
	sk := rnd.GaussianSketch(rng, s, m)
	sa := make([]float64, s*n)
	blas.Gemm(blas.NoTrans, blas.NoTrans, s, n, m, 1, sk, s, a, m, 0, sa, s)
	for trial := 0; trial < 10; trial++ {
		x := matgen.Dense[float64](rng, n, 1)
		ax := make([]float64, m)
		blas.Gemv(blas.NoTrans, m, n, 1, a, m, x, 1, 0, ax, 1)
		sax := make([]float64, s)
		blas.Gemv(blas.NoTrans, s, n, 1, sa, s, x, 1, 0, sax, 1)
		ratio := blas.Nrm2(s, sax, 1) / blas.Nrm2(m, ax, 1)
		if ratio < 0.5 || ratio > 1.5 {
			t.Fatalf("trial %d: embedding ratio %g", trial, ratio)
		}
	}
}
