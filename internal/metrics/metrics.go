// Package metrics is the runtime observability layer: allocation-free
// atomic counters, gauges, and fixed-bucket latency histograms behind a
// named registry with JSON and expvar-style text export.
//
// The package exists because the scheduling argument this repository
// reproduces is quantitative — "fork–join idles cores, dataflow keeps them
// busy" is only checkable if the runtime can report worker occupancy, queue
// depth, and per-kernel latency while running at full speed. Hot paths
// therefore pay at most one atomic operation per event, and instrumentation
// can be disabled entirely:
//
//   - a nil *Registry is the no-op registry: every metric handle it returns
//     is nil, and every operation on a nil handle returns immediately;
//   - the package-level default registry additionally carries an on/off
//     switch (Enable/Disable) checked with a single atomic load, so
//     call sites resolved at package init stay no-ops until enabled.
//
// Metric handles (Counter, Gauge, Histogram, Kernel) are resolved once by
// name — typically in a package var or a constructor — and then updated
// without any map lookup, lock, or allocation.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing (or at least add-only) int64.
// All methods are safe on a nil receiver, which makes them no-ops.
type Counter struct {
	v  atomic.Int64
	on *atomic.Bool
}

// Add increments the counter by d if metrics are enabled.
func (c *Counter) Add(d int64) {
	if c == nil || !c.on.Load() {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value (0 on a nil receiver).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can be set, or driven monotonically upward as a
// high-water mark. All methods are safe on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
	on   *atomic.Bool
}

// Set stores v if metrics are enabled.
func (g *Gauge) Set(v float64) {
	if g == nil || !g.on.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// SetMax raises the gauge to v if v exceeds the current value — the
// lock-free high-water-mark update.
func (g *Gauge) SetMax(v float64) {
	if g == nil || !g.on.Load() {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Load returns the current value (0 on a nil receiver).
func (g *Gauge) Load() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the number of power-of-two latency buckets: bucket i
// counts observations v with bits.Len64(v) == i, i.e. 2^(i-1) ≤ v < 2^i
// (bucket 0 holds v == 0). 64 buckets cover every non-negative int64.
const histBuckets = 65

// Histogram counts non-negative observations (typically nanoseconds) in
// fixed power-of-two buckets. Observe is a single atomic add; there is no
// locking and no allocation. All methods are safe on a nil receiver.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	on      *atomic.Bool
}

// Observe records one value. Negative values are clamped to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil || !h.on.Load() {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Bucket is one non-empty histogram bucket in a snapshot: Count
// observations v with Lo ≤ v ≤ Hi.
type Bucket struct {
	Lo, Hi int64
	Count  int64
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Mean    float64  `json:"mean"`
	Max     int64    `json:"max"` // upper bound of the highest occupied bucket
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1) from the
// bucket boundaries — exact to within the 2× bucket resolution.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for _, b := range s.Buckets {
		seen += b.Count
		if seen >= rank {
			return b.Hi
		}
	}
	return s.Max
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := 0; i < histBuckets; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		var lo, hi int64
		if i > 0 {
			lo = int64(1) << (i - 1)
			hi = lo<<1 - 1
			if hi < lo { // last bucket saturates at MaxInt64
				hi = math.MaxInt64
			}
		}
		s.Buckets = append(s.Buckets, Bucket{Lo: lo, Hi: hi, Count: c})
		s.Max = hi
	}
	if s.Count > 0 {
		s.Mean = float64(s.Sum) / float64(s.Count)
	}
	return s
}

// Kernel bundles the standard per-kernel throughput metrics: a flop
// counter, a nanosecond counter, and a derived GF/s gauge (flops/ns).
// Obtain one from Registry.Kernel; use Start/Stop around each invocation.
type Kernel struct {
	Flops *Counter
	Ns    *Counter
	GFS   *Gauge
	on    *atomic.Bool
}

// Start returns the kernel start time, or the zero Time when metrics are
// disabled (making the matching Stop free). Safe on a nil receiver.
func (k *Kernel) Start() time.Time {
	if k == nil || !k.on.Load() {
		return time.Time{}
	}
	return time.Now()
}

// Stop records one kernel invocation that performed flops floating point
// operations since start, and refreshes the GF/s gauge. A zero start (from
// a disabled Start) is ignored.
func (k *Kernel) Stop(start time.Time, flops int64) {
	if k == nil || start.IsZero() {
		return
	}
	ns := time.Since(start).Nanoseconds()
	if ns < 1 {
		ns = 1
	}
	k.Ns.Add(ns)
	k.Flops.Add(flops)
	// flops/ns ≡ GF/s. Loads of two counters race benignly with concurrent
	// updates; the gauge converges on the true cumulative rate.
	k.GFS.Set(float64(k.Flops.Load()) / float64(k.Ns.Load()))
}

// Registry is a named collection of metrics. The zero value is not usable;
// call New. A nil *Registry is the no-op registry: all lookups return nil
// handles whose operations do nothing.
type Registry struct {
	enabled atomic.Bool

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// New returns an enabled, empty registry.
func New() *Registry {
	r := &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
	r.enabled.Store(true)
	return r
}

// Enabled reports whether the registry records events (false for nil).
func (r *Registry) Enabled() bool { return r != nil && r.enabled.Load() }

// SetEnabled flips recording on or off. Handles already resolved observe
// the change on their next operation.
func (r *Registry) SetEnabled(on bool) {
	if r != nil {
		r.enabled.Store(on)
	}
}

// Counter returns (creating if needed) the named counter, or nil on the
// no-op registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{on: &r.enabled}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge, or nil on the no-op
// registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{on: &r.enabled}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram, or nil on
// the no-op registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{on: &r.enabled}
		r.hists[name] = h
	}
	return h
}

// Kernel returns the standard metric bundle for a kernel: counters
// "<name>.flops" and "<name>.ns" plus gauge "<name>.gflops". On the no-op
// registry all fields are nil and the bundle itself is nil.
func (r *Registry) Kernel(name string) *Kernel {
	if r == nil {
		return nil
	}
	return &Kernel{
		Flops: r.Counter(name + ".flops"),
		Ns:    r.Counter(name + ".ns"),
		GFS:   r.Gauge(name + ".gflops"),
		on:    &r.enabled,
	}
}

// Reset zeroes every registered metric (values only; handles stay valid).
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.bits.Store(0)
	}
	for _, h := range r.hists {
		for i := range h.buckets {
			h.buckets[i].Store(0)
		}
		h.count.Store(0)
		h.sum.Store(0)
	}
}

// Snapshot is a point-in-time copy of every metric in a registry,
// JSON-marshalable and sorted for stable text output.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the current value of every metric. It is safe to call
// concurrently with updates; each metric is read atomically, the set as a
// whole is not a consistent cut. A nil registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.v.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = math.Float64frombits(g.bits.Load())
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText writes the snapshot in expvar-style "name value" lines,
// sorted by name. Histograms print count, mean, and the p50/p95/p99
// bucket upper bounds.
func (s Snapshot) WriteText(w io.Writer) error {
	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		var err error
		switch {
		case s.Counters != nil && hasKeyI(s.Counters, n):
			_, err = fmt.Fprintf(w, "%s %d\n", n, s.Counters[n])
		case s.Gauges != nil && hasKeyF(s.Gauges, n):
			_, err = fmt.Fprintf(w, "%s %g\n", n, s.Gauges[n])
		default:
			h := s.Histograms[n]
			_, err = fmt.Fprintf(w, "%s count=%d mean=%.0f p50<=%d p95<=%d p99<=%d\n",
				n, h.Count, h.Mean, h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func hasKeyI(m map[string]int64, k string) bool   { _, ok := m[k]; return ok }
func hasKeyF(m map[string]float64, k string) bool { _, ok := m[k]; return ok }

// The package default registry: always present so call sites can resolve
// handles at init, but disabled until Enable — a disabled handle costs one
// atomic bool load per event.
var def = func() *Registry {
	r := New()
	r.SetEnabled(false)
	return r
}()

// Default returns the package default registry (never nil, initially
// disabled).
func Default() *Registry { return def }

// Enabled reports whether the default registry is recording.
func Enabled() bool { return def.Enabled() }

// Enable turns on recording in the default registry and returns it.
func Enable() *Registry {
	def.SetEnabled(true)
	return def
}

// Disable turns off recording in the default registry.
func Disable() { def.SetEnabled(false) }

// Reset zeroes every metric in the default registry.
func Reset() { def.Reset() }
