package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := New()
	c := r.Counter("c")
	c.Add(3)
	c.Inc()
	if got := c.Load(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if c2 := r.Counter("c"); c2 != c {
		t.Fatal("same name must return the same counter")
	}
	g := r.Gauge("g")
	g.Set(2.5)
	if got := g.Load(); got != 2.5 {
		t.Fatalf("gauge = %g, want 2.5", got)
	}
	g.SetMax(1.0) // below current: no change
	if got := g.Load(); got != 2.5 {
		t.Fatalf("SetMax lowered gauge to %g", got)
	}
	g.SetMax(7.0)
	if got := g.Load(); got != 7.0 {
		t.Fatalf("SetMax = %g, want 7", got)
	}
}

func TestNopRegistry(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	// Every handle is nil and every operation must be a safe no-op.
	c := r.Counter("x")
	c.Add(5)
	c.Inc()
	if c != nil || c.Load() != 0 {
		t.Fatal("nil registry returned a live counter")
	}
	g := r.Gauge("x")
	g.Set(1)
	g.SetMax(2)
	if g != nil || g.Load() != 0 {
		t.Fatal("nil registry returned a live gauge")
	}
	h := r.Histogram("x")
	h.Observe(1)
	if h != nil || h.Count() != 0 {
		t.Fatal("nil registry returned a live histogram")
	}
	k := r.Kernel("x")
	k.Stop(k.Start(), 100)
	if k != nil {
		t.Fatal("nil registry returned a live kernel")
	}
	r.Reset()
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestDisabledRegistryRecordsNothing(t *testing.T) {
	r := New()
	c := r.Counter("c")
	h := r.Histogram("h")
	r.SetEnabled(false)
	c.Add(10)
	h.Observe(10)
	if c.Load() != 0 || h.Count() != 0 {
		t.Fatal("disabled registry recorded events")
	}
	r.SetEnabled(true)
	c.Add(10)
	h.Observe(10)
	if c.Load() != 10 || h.Count() != 1 {
		t.Fatal("re-enabled registry dropped events")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("lat")
	for _, v := range []int64{0, 1, 2, 3, 4, 1000, 1 << 40, -5} {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 8 {
		t.Fatalf("count = %d, want 8", s.Count)
	}
	if want := int64(0 + 1 + 2 + 3 + 4 + 1000 + (1 << 40) + 0); s.Sum != want {
		t.Fatalf("sum = %d, want %d", s.Sum, want)
	}
	// Bucket boundaries: 0 and the clamped -5 land in the zero bucket.
	if s.Buckets[0].Lo != 0 || s.Buckets[0].Count != 2 {
		t.Fatalf("zero bucket = %+v", s.Buckets[0])
	}
	var total int64
	for _, b := range s.Buckets {
		if b.Count <= 0 || b.Lo > b.Hi {
			t.Fatalf("malformed bucket %+v", b)
		}
		total += b.Count
	}
	if total != s.Count {
		t.Fatalf("bucket counts sum to %d, want %d", total, s.Count)
	}
	// Quantiles are monotone and bounded by Max.
	var prev int64
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		v := s.Quantile(q)
		if v < prev || v > s.Max {
			t.Fatalf("quantile(%g) = %d not monotone within [%d, %d]", q, v, prev, s.Max)
		}
		prev = v
	}
	if s.Quantile(1) < 1<<40 {
		t.Fatalf("p100 = %d, want >= %d", s.Quantile(1), int64(1)<<40)
	}
}

func TestKernelGFS(t *testing.T) {
	r := New()
	k := r.Kernel("blas.test")
	start := k.Start()
	if start.IsZero() {
		t.Fatal("enabled kernel returned zero start")
	}
	k.Stop(start, 1e6)
	if k.Flops.Load() != 1e6 {
		t.Fatalf("flops = %d", k.Flops.Load())
	}
	if k.Ns.Load() < 1 {
		t.Fatalf("ns = %d", k.Ns.Load())
	}
	want := float64(k.Flops.Load()) / float64(k.Ns.Load())
	if got := k.GFS.Load(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("gflops gauge = %g, want %g", got, want)
	}
	snap := r.Snapshot()
	for _, name := range []string{"blas.test.flops", "blas.test.ns"} {
		if _, ok := snap.Counters[name]; !ok {
			t.Fatalf("snapshot missing counter %q", name)
		}
	}
	if _, ok := snap.Gauges["blas.test.gflops"]; !ok {
		t.Fatal("snapshot missing gflops gauge")
	}
}

func TestSnapshotExports(t *testing.T) {
	r := New()
	r.Counter("a.count").Add(7)
	r.Gauge("b.gauge").Set(1.5)
	r.Histogram("c.lat").Observe(100)
	snap := r.Snapshot()

	var jsonBuf bytes.Buffer
	if err := snap.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(jsonBuf.Bytes(), &decoded); err != nil {
		t.Fatalf("JSON export not well-formed: %v", err)
	}
	if decoded.Counters["a.count"] != 7 || decoded.Gauges["b.gauge"] != 1.5 {
		t.Fatalf("JSON round trip lost values: %+v", decoded)
	}
	if decoded.Histograms["c.lat"].Count != 1 {
		t.Fatalf("JSON round trip lost histogram: %+v", decoded.Histograms)
	}

	var textBuf bytes.Buffer
	if err := snap.WriteText(&textBuf); err != nil {
		t.Fatal(err)
	}
	text := textBuf.String()
	for _, want := range []string{"a.count 7", "b.gauge 1.5", "c.lat count=1"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text export missing %q:\n%s", want, text)
		}
	}
}

func TestReset(t *testing.T) {
	r := New()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	c.Add(5)
	g.Set(5)
	h.Observe(5)
	r.Reset()
	if c.Load() != 0 || g.Load() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("Reset left values behind")
	}
	// Handles stay live after Reset.
	c.Add(1)
	if c.Load() != 1 {
		t.Fatal("counter dead after Reset")
	}
}

func TestDefaultRegistryToggle(t *testing.T) {
	defer func() {
		Disable()
		Reset()
	}()
	Reset()
	c := Default().Counter("test.toggle")
	c.Add(1)
	if c.Load() != 0 {
		t.Fatal("default registry recorded while disabled")
	}
	Enable()
	if !Enabled() {
		t.Fatal("Enable did not enable")
	}
	c.Add(1)
	if c.Load() != 1 {
		t.Fatal("default registry dropped event while enabled")
	}
}

// Concurrent updates must be linearizable per metric (exercised under -race
// by CI).
func TestConcurrentUpdates(t *testing.T) {
	r := New()
	c := r.Counter("c")
	g := r.Gauge("hwm")
	h := r.Histogram("h")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.SetMax(float64(w*per + i))
				h.Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if c.Load() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Load(), workers*per)
	}
	if want := float64(workers*per - 1); g.Load() != want {
		t.Fatalf("hwm = %g, want %g", g.Load(), want)
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*per)
	}
}
