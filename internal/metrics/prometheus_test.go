package metrics

import (
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Counter("sched.tasks_completed").Add(42)
	r.Gauge("sched.ready_depth").Set(3.5)
	h := r.Histogram("sched.kernel.gemm.latency_ns")
	h.Observe(1) // bucket hi=1
	h.Observe(3) // bucket hi=3
	h.Observe(3)
	big := r.Histogram("sched.kernel.big.latency_ns")
	big.Observe(1 << 62) // lands in the saturated bucket (hi=MaxInt64)

	var sb strings.Builder
	if err := r.Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# TYPE sched_tasks_completed counter\n",
		"sched_tasks_completed 42\n",
		"# TYPE sched_ready_depth gauge\n",
		"sched_ready_depth 3.5\n",
		"# TYPE sched_kernel_gemm_latency_ns histogram\n",
		`sched_kernel_gemm_latency_ns_bucket{le="1"} 1` + "\n",
		`sched_kernel_gemm_latency_ns_bucket{le="3"} 3` + "\n", // cumulative
		`sched_kernel_gemm_latency_ns_bucket{le="+Inf"} 3` + "\n",
		"sched_kernel_gemm_latency_ns_sum 7\n",
		"sched_kernel_gemm_latency_ns_count 3\n",
		`sched_kernel_big_latency_ns_bucket{le="+Inf"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Sorted: the counter family precedes the gauge family.
	if strings.Index(out, "sched_kernel_gemm") > strings.Index(out, "sched_ready_depth") {
		t.Errorf("families not sorted by name:\n%s", out)
	}
	// The saturated MaxInt64 bucket must be folded into +Inf, not emitted
	// as a duplicate finite-bound sample.
	if strings.Contains(out, `le="9223372036854775807"`) {
		t.Errorf("saturated bucket emitted alongside +Inf:\n%s", out)
	}
}

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"sched.kernel.gemm.tasks": "sched_kernel_gemm_tasks",
		"already_fine":            "already_fine",
		"9starts_with_digit":      "_9starts_with_digit",
		"weird-chars!":            "weird_chars_",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
