package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples, histograms
// as cumulative `_bucket{le="..."}` series plus `_sum` and `_count`, all
// preceded by `# TYPE` lines and sorted by name. Metric names are sanitized
// to the Prometheus charset ('.' and other invalid runes become '_').
func (s Snapshot) WritePrometheus(w io.Writer) error {
	type sample struct {
		name string // sanitized
		emit func() error
	}
	samples := make([]sample, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for name, v := range s.Counters {
		n, v := promName(name), v
		samples = append(samples, sample{n, func() error {
			_, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, v)
			return err
		}})
	}
	for name, v := range s.Gauges {
		n, v := promName(name), v
		samples = append(samples, sample{n, func() error {
			_, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", n, n, v)
			return err
		}})
	}
	for name, h := range s.Histograms {
		n, h := promName(name), h
		samples = append(samples, sample{n, func() error {
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
				return err
			}
			var cum int64
			for _, b := range h.Buckets {
				cum += b.Count
				if b.Hi == math.MaxInt64 {
					// The saturated last bucket is covered by the +Inf sample;
					// an explicit le="9223372036854775807" line would be
					// redundant noise for Prometheus consumers.
					continue
				}
				if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", n, b.Hi, cum); err != nil {
					return err
				}
			}
			_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
				n, h.Count, n, h.Sum, n, h.Count)
			return err
		}})
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].name < samples[j].name })
	for _, sm := range samples {
		if err := sm.emit(); err != nil {
			return err
		}
	}
	return nil
}

// promName maps a registry metric name onto the Prometheus name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			if r >= '0' && r <= '9' { // leading digit
				b.WriteByte('_')
				b.WriteRune(r)
				continue
			}
			b.WriteByte('_')
			continue
		}
		b.WriteRune(r)
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}
