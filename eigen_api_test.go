package exadla_test

import (
	"math"
	"math/rand"
	"testing"

	"exadla"
)

func TestEigenSym(t *testing.T) {
	ctx := newCtx(t)
	rng := rand.New(rand.NewSource(40))
	n := 40
	a := exadla.RandomSPD(rng, n)
	vals, vecs, err := ctx.EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != n {
		t.Fatalf("%d eigenvalues", len(vals))
	}
	// SPD ⇒ all positive and ascending.
	for i, v := range vals {
		if v <= 0 {
			t.Fatalf("λ[%d] = %v not positive", i, v)
		}
		if i > 0 && vals[i] < vals[i-1] {
			t.Fatal("eigenvalues not sorted")
		}
	}
	// Reconstruct A = V·diag(λ)·Vᵀ through the public API.
	vd := vecs.Clone()
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			vd.Set(i, j, vecs.At(i, j)*vals[j])
		}
	}
	vt := exadla.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			vt.Set(i, j, vecs.At(j, i))
		}
	}
	recon := ctx.Multiply(vd, vt)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			if math.Abs(recon.At(i, j)-a.At(i, j)) > 1e-9*float64(n) {
				t.Fatalf("reconstruction differs at (%d,%d)", i, j)
			}
		}
	}
}

func TestEigenvaluesSymPrescribedCond(t *testing.T) {
	ctx := newCtx(t)
	rng := rand.New(rand.NewSource(41))
	n, cond := 30, 1e4
	a := exadla.RandomSPDWithCond(rng, n, cond)
	vals, err := ctx.EigenvaluesSym(a)
	if err != nil {
		t.Fatal(err)
	}
	got := vals[n-1] / vals[0]
	if math.Abs(got-cond)/cond > 1e-6 {
		t.Errorf("spectral condition %v want %v", got, cond)
	}
}

func TestSingularValues(t *testing.T) {
	ctx := newCtx(t)
	rng := rand.New(rand.NewSource(42))
	m, n, cond := 120, 25, 1e3
	a := exadla.RandomWithCond(rng, m, n, cond)
	sv, err := ctx.SingularValues(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(sv) != n {
		t.Fatalf("%d singular values", len(sv))
	}
	// matgen promises log-spaced σ from 1 down to 1/cond.
	if math.Abs(sv[0]-1) > 1e-8 {
		t.Errorf("σmax = %v want 1", sv[0])
	}
	if math.Abs(sv[n-1]-1/cond)/(1/cond) > 1e-4 {
		t.Errorf("σmin = %v want %v", sv[n-1], 1/cond)
	}
	for i := 1; i < n; i++ {
		if sv[i] > sv[i-1] {
			t.Fatal("singular values not descending")
		}
	}
}

func TestEigenSymNonSquare(t *testing.T) {
	ctx := newCtx(t)
	if _, _, err := ctx.EigenSym(exadla.NewMatrix(3, 4)); err == nil {
		t.Error("expected dimension error")
	}
}
