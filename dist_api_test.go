package exadla_test

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"exadla"
)

// localCholesky is the single-process reference for the distributed runs.
func localCholesky(t *testing.T, a *exadla.Matrix) *exadla.Matrix {
	t.Helper()
	ctx := exadla.NewContext(exadla.WithWorkers(2), exadla.WithTileSize(16))
	defer ctx.Close()
	f, err := ctx.Cholesky(a.Clone())
	if err != nil {
		t.Fatal(err)
	}
	return f.L()
}

func TestServeDistMatchesLocal(t *testing.T) {
	const n = 96
	rng := rand.New(rand.NewSource(41))
	a := exadla.RandomSPD(rng, n)
	want := localCholesky(t, a)

	job, err := exadla.ServeDist("127.0.0.1:0", a.Clone(), exadla.DistConfig{
		TileSize: 16,
		Lease:    500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := exadla.JoinDist(job.Addr(), exadla.DistChaos{}); err != nil {
				t.Errorf("worker: %v", err)
			}
		}()
	}
	got, err := job.Run()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	// The distributed result is the full in-place factorization (lower
	// triangle holds L); compare that triangle against the factor object.
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			if math.Float64bits(got.At(i, j)) != math.Float64bits(want.At(i, j)) {
				t.Fatalf("distributed L(%d,%d)=%v differs from local %v", i, j, got.At(i, j), want.At(i, j))
			}
		}
	}
	s := job.Stats()
	if s.WorkersJoined != 3 || s.TasksCompleted == 0 {
		t.Errorf("unexpected stats: %+v", s)
	}
}

func TestServeDistNoWorkersDegradesLocally(t *testing.T) {
	const n = 64
	rng := rand.New(rand.NewSource(42))
	a := exadla.RandomSPD(rng, n)
	want := localCholesky(t, a)

	job, err := exadla.ServeDist("127.0.0.1:0", a.Clone(), exadla.DistConfig{TileSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	got, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			if math.Float64bits(got.At(i, j)) != math.Float64bits(want.At(i, j)) {
				t.Fatalf("local-degraded L(%d,%d) differs", i, j)
			}
		}
	}
	if s := job.Stats(); s.TasksLocal == 0 {
		t.Errorf("no worker ever joined but TasksLocal=0: %+v", s)
	}
}

func TestResumeDist(t *testing.T) {
	const n = 96
	rng := rand.New(rand.NewSource(43))
	a := exadla.RandomSPD(rng, n)
	want := localCholesky(t, a)
	dir := t.TempDir()

	// First run: checkpoint every 2 panel steps, then simulate coordinator
	// loss by resuming from the snapshot directory in a fresh job.
	job, err := exadla.ServeDist("127.0.0.1:0", a.Clone(), exadla.DistConfig{
		TileSize:        16,
		CheckpointDir:   dir,
		CheckpointEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Run(); err != nil {
		t.Fatal(err)
	}
	if job.Stats().CheckpointsSaved == 0 {
		t.Fatal("no checkpoints were written")
	}

	resumed, err := exadla.ResumeDist("127.0.0.1:0", exadla.DistConfig{CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got, err := resumed.Run()
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			if math.Float64bits(got.At(i, j)) != math.Float64bits(want.At(i, j)) {
				t.Fatalf("resumed L(%d,%d) differs", i, j)
			}
		}
	}
}
