package exadla

import (
	"fmt"
	"io"
	"log/slog"
	"time"

	"exadla/internal/dist"
	"exadla/internal/metrics"
	"exadla/internal/obs"
	"exadla/internal/tile"
	"exadla/internal/trace"
)

// This file is the public face of the multi-process distributed runtime
// (internal/dist): a coordinator that owns the task DAG and the tile
// object store, serving stateless workers that pull tasks over net/rpc.
// Workers may die (SIGKILL), hang past their lease, join mid-run, or sit
// behind a flaky network — the factor that comes out is bitwise identical
// to a single-process run, because the DAG serializes writers and a
// revoked lease's late commit is never applied.
//
// Serve side:
//
//	job, _ := exadla.ServeDist("127.0.0.1:7000", a, exadla.DistConfig{})
//	l, err := job.Run() // blocks until the factorization completes
//
// Worker side (any number of processes, any time):
//
//	err := exadla.JoinDist("coordinator:7000", exadla.DistChaos{})

// Distributed operations accepted by DistConfig.Op.
const (
	// DistCholesky factors an SPD matrix into its lower Cholesky factor.
	DistCholesky = dist.OpCholesky
	// DistLUNoPiv factors without pivoting (deterministic task graph; the
	// matrix must make pivot-free elimination stable, e.g. diagonally
	// dominant).
	DistLUNoPiv = dist.OpLUNoPiv
)

// DistChaos configures the seeded wire-fault injector a joining worker
// wraps around every RPC (drop requests, drop replies after execution,
// duplicate, delay, flip payload bits in flight, or silence everything
// for a partition window). The zero value injects nothing.
type DistChaos = dist.NetChaos

// DistStats is a point-in-time snapshot of a distributed job's counters.
type DistStats = dist.StatsSnapshot

// DistStatus is the coordinator's live cluster snapshot: per-worker health
// (liveness, heartbeat age, clock offset, spans shipped), the outstanding
// lease table, the eviction log, and progress counters. Served as JSON on
// the ServeObs /dist endpoint.
type DistStatus = dist.ClusterStatus

// DistEvent is one structured distributed-runtime fault event (worker
// evicted, lease reaped, stale commit rejected, injected wire fault),
// delivered to DistConfig.EventLog as it happens.
type DistEvent = dist.Event

// DistConfig tunes a distributed job. The zero value runs Cholesky with
// the Context-independent defaults: tile size DefaultTileSize, a 1×1
// logical grid, caching enabled, no checkpoints.
type DistConfig struct {
	// Op is DistCholesky (default) or DistLUNoPiv.
	Op string
	// TileSize is the tile edge; DefaultTileSize when zero.
	TileSize int
	// GridP×GridQ is the logical process grid for block-cyclic placement.
	GridP, GridQ int
	// Strict enforces owner-computes placement on the grid and disables
	// remote-tile caching, so measured traffic matches the replay cost
	// model (dist.Count) exactly. Requires GridP·GridQ registered workers;
	// set WaitWorkers accordingly.
	Strict bool
	// WriteBack lets the store drop finalized tiles whose bytes a worker
	// holds (≤1 per tile row), relying on XOR parity for reconstruction.
	WriteBack bool
	// MinWorkers is the fleet size below which the coordinator degrades to
	// executing ready tasks locally instead of waiting.
	MinWorkers int
	// WaitWorkers, when positive, holds task leasing until that many
	// workers have registered.
	WaitWorkers int
	// Lease and DeadAfter override the task-lease duration and the
	// heartbeat-silence eviction deadline.
	Lease, DeadAfter time.Duration
	// Speculate arms straggler mitigation: a lease running long against
	// the learned duration distribution of its kernel kind is twinned onto
	// an idle worker, and the first valid commit wins (the loser is
	// absorbed as a duplicate, so the factor is still bitwise identical).
	// Ignored under Strict placement.
	Speculate bool
	// ScrubEvery, when positive, arms the background integrity scrub: the
	// coordinator re-verifies stored tiles against their at-rest CRCs at
	// this interval, repairing detected rot from row parity.
	ScrubEvery time.Duration
	// CheckpointDir, when set, arms per-panel-window snapshots (every
	// CheckpointEvery steps, minimum 1) from which ResumeDist restarts.
	CheckpointDir   string
	CheckpointEvery int
	// Metrics publishes the job's counters to the process-global metrics
	// registry (dist.* names, including per-RPC dist.rpc.* latency and
	// payload histograms), visible on the WithObservability endpoint.
	Metrics bool
	// EventLog, when non-nil, receives one structured log record per
	// cluster fault event: worker evictions and lease reaps at Warn, stale
	// commits and injected wire faults at Info.
	EventLog *slog.Logger
}

func (cfg DistConfig) options(a *tile.Matrix[float64]) dist.Options {
	opt := dist.Options{
		Op:          cfg.Op,
		A:           a,
		GridP:       cfg.GridP,
		GridQ:       cfg.GridQ,
		Strict:      cfg.Strict,
		WriteBack:   cfg.WriteBack,
		MinWorkers:  cfg.MinWorkers,
		WaitWorkers: cfg.WaitWorkers,
		Lease:       cfg.Lease,
		DeadAfter:   cfg.DeadAfter,
		Speculate:   cfg.Speculate,
		ScrubEvery:  cfg.ScrubEvery,
		CkptDir:     cfg.CheckpointDir,
		CkptEvery:   cfg.CheckpointEvery,
	}
	if opt.Op == "" {
		opt.Op = DistCholesky
	}
	if cfg.Metrics {
		metrics.Enable()
		opt.Registry = metrics.Default()
	}
	if cfg.EventLog != nil {
		opt.Events = obs.DistLogger(cfg.EventLog)
	}
	return opt
}

// DistJob is a coordinator serving one distributed factorization.
type DistJob struct {
	c *dist.Coordinator
	n int
}

// ServeDist starts a coordinator on addr (host:port; port 0 picks one —
// see Addr) for the factorization of the square matrix a. Workers join
// with JoinDist; Run blocks until the factor is complete.
func ServeDist(addr string, a *Matrix, cfg DistConfig) (*DistJob, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("exadla: ServeDist needs a square matrix, got %d×%d", a.rows, a.cols)
	}
	nb := cfg.TileSize
	if nb <= 0 {
		nb = DefaultTileSize
	}
	opt := cfg.options(tile.FromColMajor(a.rows, a.cols, a.data, a.rows, nb))
	c, err := dist.NewCoordinator(addr, opt)
	if err != nil {
		return nil, err
	}
	return &DistJob{c: c, n: a.rows}, nil
}

// ResumeDist starts a coordinator that restarts the factorization
// recorded in cfg.CheckpointDir from its newest valid snapshot. The
// resumed run finishes bitwise identical to an uninterrupted one.
func ResumeDist(addr string, cfg DistConfig) (*DistJob, error) {
	if cfg.CheckpointDir == "" {
		return nil, fmt.Errorf("exadla: ResumeDist needs DistConfig.CheckpointDir")
	}
	opt := cfg.options(nil)
	opt.Resume = true
	c, err := dist.NewCoordinator(addr, opt)
	if err != nil {
		return nil, err
	}
	j := &DistJob{c: c}
	return j, nil
}

// Addr returns the coordinator's listen address (with the concrete port
// when ServeDist was given port 0) — hand it to JoinDist.
func (j *DistJob) Addr() string { return j.c.Addr() }

// Run serves workers until the factorization completes and returns the
// factor (lower Cholesky factor, or the packed L\U of the no-pivot LU).
// With no workers and MinWorkers 0 the coordinator computes everything
// itself — a distributed job degrades to a local one rather than hanging.
func (j *DistJob) Run() (*Matrix, error) {
	if err := j.c.Run(); err != nil {
		return nil, err
	}
	r := j.c.Result()
	return FromSlice(r.M, r.N, r.ToColMajor()), nil
}

// Stats snapshots the job's counters (workers joined/lost, leases
// expired, commits rejected, bytes moved, tiles reconstructed, …). Safe
// to call concurrently with Run.
func (j *DistJob) Stats() DistStats { return j.c.Stats() }

// Status snapshots the live cluster state: every registered worker with
// its heartbeat age, clock-offset estimate, and span-shipping progress,
// the outstanding lease table, and the eviction log. Safe to call
// concurrently with Run.
func (j *DistJob) Status() DistStatus { return j.c.Status() }

// WriteClusterTrace writes the merged multi-process trace as Chrome
// trace-event JSON, loadable in Perfetto (ui.perfetto.dev): one process
// lane per OS process (the coordinator plus each worker), lease-lifecycle
// slices with fetch/compute/commit sub-phases, flow arrows from a tile's
// commit to its dependent fetches, and fault instants (evictions, lease
// reaps, stale commits, injected wire faults). Worker timestamps are
// aligned onto the coordinator's clock by each process's best RTT-midpoint
// offset sample. Callable mid-run (a partial trace) or after Run.
func (j *DistJob) WriteClusterTrace(w io.Writer) error {
	return j.c.ClusterLog().WriteChromeCluster(w)
}

// WriteClusterEvents writes the merged multi-process trace in the native
// events format, re-loadable by trace.ReadJSON and summarizable by the
// exatrace -cluster command.
func (j *DistJob) WriteClusterEvents(w io.Writer) error {
	return j.c.ClusterLog().WriteJSON(w)
}

// ServeObs starts the observability HTTP server for this job on addr
// (host:port; port 0 picks one — read it back from Server.Addr). On top of
// the standard endpoints, /dist serves the live cluster status as JSON,
// /trace?scope=cluster serves the merged multi-process trace (add
// &format=events for the native form), and /healthz reports the live
// fleet: workers currently alive, their heartbeat ages, and how many have
// been evicted — not a static count. Close the returned server when done.
func (j *DistJob) ServeObs(addr string) (*obs.Server, error) {
	metrics.Enable()
	return obs.Start(addr, obs.Options{
		Registry: metrics.Default(),
		Cluster:  func() *trace.Log { return j.c.ClusterLog() },
		Dist:     func() any { return j.c.Status() },
		Health: func() map[string]any {
			st := j.c.Status()
			beats := make(map[string]any, len(st.Workers))
			for _, w := range st.Workers {
				if w.Live {
					beats[fmt.Sprintf("w%d", w.ID)] = w.LastBeatMS
				}
			}
			return map[string]any{
				"workers_live":       st.WorkersLive,
				"workers_evicted":    len(st.Evictions),
				"heartbeat_ages_ms":  beats,
				"tasks_completed":    st.Completed,
				"tasks_total":        st.Tasks,
				"done":               st.Done,
				"leases_outstanding": len(st.Leases),
			}
		},
	})
}

// JoinDist runs one worker against the coordinator at addr until the job
// completes (nil) or the coordinator becomes unreachable. The worker is
// stateless: kill -9 it at any point and the job still finishes with the
// identical factor. chaos injects seeded wire faults for testing; pass
// the zero value for a well-behaved worker.
func JoinDist(addr string, chaos DistChaos) error {
	return dist.RunWorker(addr, dist.WorkerOptions{Chaos: chaos})
}
