package exadla

import (
	"fmt"
	"time"

	"exadla/internal/dist"
	"exadla/internal/metrics"
	"exadla/internal/tile"
)

// This file is the public face of the multi-process distributed runtime
// (internal/dist): a coordinator that owns the task DAG and the tile
// object store, serving stateless workers that pull tasks over net/rpc.
// Workers may die (SIGKILL), hang past their lease, join mid-run, or sit
// behind a flaky network — the factor that comes out is bitwise identical
// to a single-process run, because the DAG serializes writers and a
// revoked lease's late commit is never applied.
//
// Serve side:
//
//	job, _ := exadla.ServeDist("127.0.0.1:7000", a, exadla.DistConfig{})
//	l, err := job.Run() // blocks until the factorization completes
//
// Worker side (any number of processes, any time):
//
//	err := exadla.JoinDist("coordinator:7000", exadla.DistChaos{})

// Distributed operations accepted by DistConfig.Op.
const (
	// DistCholesky factors an SPD matrix into its lower Cholesky factor.
	DistCholesky = dist.OpCholesky
	// DistLUNoPiv factors without pivoting (deterministic task graph; the
	// matrix must make pivot-free elimination stable, e.g. diagonally
	// dominant).
	DistLUNoPiv = dist.OpLUNoPiv
)

// DistChaos configures the seeded wire-fault injector a joining worker
// wraps around every RPC (drop requests, drop replies after execution,
// duplicate, delay). The zero value injects nothing.
type DistChaos = dist.NetChaos

// DistStats is a point-in-time snapshot of a distributed job's counters.
type DistStats = dist.StatsSnapshot

// DistConfig tunes a distributed job. The zero value runs Cholesky with
// the Context-independent defaults: tile size DefaultTileSize, a 1×1
// logical grid, caching enabled, no checkpoints.
type DistConfig struct {
	// Op is DistCholesky (default) or DistLUNoPiv.
	Op string
	// TileSize is the tile edge; DefaultTileSize when zero.
	TileSize int
	// GridP×GridQ is the logical process grid for block-cyclic placement.
	GridP, GridQ int
	// Strict enforces owner-computes placement on the grid and disables
	// remote-tile caching, so measured traffic matches the replay cost
	// model (dist.Count) exactly. Requires GridP·GridQ registered workers;
	// set WaitWorkers accordingly.
	Strict bool
	// WriteBack lets the store drop finalized tiles whose bytes a worker
	// holds (≤1 per tile row), relying on XOR parity for reconstruction.
	WriteBack bool
	// MinWorkers is the fleet size below which the coordinator degrades to
	// executing ready tasks locally instead of waiting.
	MinWorkers int
	// WaitWorkers, when positive, holds task leasing until that many
	// workers have registered.
	WaitWorkers int
	// Lease and DeadAfter override the task-lease duration and the
	// heartbeat-silence eviction deadline.
	Lease, DeadAfter time.Duration
	// CheckpointDir, when set, arms per-panel-window snapshots (every
	// CheckpointEvery steps, minimum 1) from which ResumeDist restarts.
	CheckpointDir   string
	CheckpointEvery int
	// Metrics publishes the job's counters to the process-global metrics
	// registry (dist.* names), visible on the WithObservability endpoint.
	Metrics bool
}

func (cfg DistConfig) options(a *tile.Matrix[float64]) dist.Options {
	opt := dist.Options{
		Op:          cfg.Op,
		A:           a,
		GridP:       cfg.GridP,
		GridQ:       cfg.GridQ,
		Strict:      cfg.Strict,
		WriteBack:   cfg.WriteBack,
		MinWorkers:  cfg.MinWorkers,
		WaitWorkers: cfg.WaitWorkers,
		Lease:       cfg.Lease,
		DeadAfter:   cfg.DeadAfter,
		CkptDir:     cfg.CheckpointDir,
		CkptEvery:   cfg.CheckpointEvery,
	}
	if opt.Op == "" {
		opt.Op = DistCholesky
	}
	if cfg.Metrics {
		metrics.Enable()
		opt.Registry = metrics.Default()
	}
	return opt
}

// DistJob is a coordinator serving one distributed factorization.
type DistJob struct {
	c *dist.Coordinator
	n int
}

// ServeDist starts a coordinator on addr (host:port; port 0 picks one —
// see Addr) for the factorization of the square matrix a. Workers join
// with JoinDist; Run blocks until the factor is complete.
func ServeDist(addr string, a *Matrix, cfg DistConfig) (*DistJob, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("exadla: ServeDist needs a square matrix, got %d×%d", a.rows, a.cols)
	}
	nb := cfg.TileSize
	if nb <= 0 {
		nb = DefaultTileSize
	}
	opt := cfg.options(tile.FromColMajor(a.rows, a.cols, a.data, a.rows, nb))
	c, err := dist.NewCoordinator(addr, opt)
	if err != nil {
		return nil, err
	}
	return &DistJob{c: c, n: a.rows}, nil
}

// ResumeDist starts a coordinator that restarts the factorization
// recorded in cfg.CheckpointDir from its newest valid snapshot. The
// resumed run finishes bitwise identical to an uninterrupted one.
func ResumeDist(addr string, cfg DistConfig) (*DistJob, error) {
	if cfg.CheckpointDir == "" {
		return nil, fmt.Errorf("exadla: ResumeDist needs DistConfig.CheckpointDir")
	}
	opt := cfg.options(nil)
	opt.Resume = true
	c, err := dist.NewCoordinator(addr, opt)
	if err != nil {
		return nil, err
	}
	j := &DistJob{c: c}
	return j, nil
}

// Addr returns the coordinator's listen address (with the concrete port
// when ServeDist was given port 0) — hand it to JoinDist.
func (j *DistJob) Addr() string { return j.c.Addr() }

// Run serves workers until the factorization completes and returns the
// factor (lower Cholesky factor, or the packed L\U of the no-pivot LU).
// With no workers and MinWorkers 0 the coordinator computes everything
// itself — a distributed job degrades to a local one rather than hanging.
func (j *DistJob) Run() (*Matrix, error) {
	if err := j.c.Run(); err != nil {
		return nil, err
	}
	r := j.c.Result()
	return FromSlice(r.M, r.N, r.ToColMajor()), nil
}

// Stats snapshots the job's counters (workers joined/lost, leases
// expired, commits rejected, bytes moved, tiles reconstructed, …). Safe
// to call concurrently with Run.
func (j *DistJob) Stats() DistStats { return j.c.Stats() }

// JoinDist runs one worker against the coordinator at addr until the job
// completes (nil) or the coordinator becomes unreachable. The worker is
// stateless: kill -9 it at any point and the job still finishes with the
// identical factor. chaos injects seeded wire faults for testing; pass
// the zero value for a well-behaved worker.
func JoinDist(addr string, chaos DistChaos) error {
	return dist.RunWorker(addr, dist.WorkerOptions{Chaos: chaos})
}
